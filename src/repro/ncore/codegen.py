"""Tier-3 fastpath: ahead-of-time segment codegen with multi-variant dispatch.

Tier 1 (:mod:`repro.ncore.fastpath`) fuses hardware loops at *load* time;
the replay cache (Tier 2) skips byte-identical queries.  This module is
the *compile*-time tier: each kernel segment of a quantized graph is
lowered to one or more vectorized-numpy **macro-kernels** — whole
loop-nests collapsed into a handful of BLAS-backed array operations —
emitted as picklable :class:`MacroKernel` artifacts that the compile
cache stores alongside the Loadable (``repro.compiler.cache`` artifact
kind ``codegen``).

Bit-exactness is the contract: a macro-kernel computes byte-for-byte what
:func:`repro.runtime.qkernels.execute_quantized` computes.  Two levers
make that fast without breaking it:

- **Exact float64 accumulation.**  Quantized conv/FC accumulators are
  bounded by ``max|x - zp| * sum|w - zp|`` which is far below ``2**53``
  for every representable uint8/int16 operand, so an f64 BLAS matmul over
  zero-offset operands is *exactly* the int64 matmul — 10-20x faster.
  The bound is checked per kernel at codegen time; kernels that could
  exceed it keep the int64 path.
- **Multi-variant dispatch** (the PyTorch-Inductor multi-kernel
  pattern): where several lowering strategies exist — a whole-loop-nest
  einsum/tensordot form vs. a fused per-tap row-sweep form — every
  variant is emitted, the :class:`MultiKernelDispatcher` benchmarks them
  once per (segment, input shapes), cross-checks their outputs
  byte-for-byte, and pins the winner; losers never run again.

The per-node interpreter stays on as the oracle: the executor verifies a
macro-kernel's outputs against it on first dispatch (``oracle="first"``,
the default policy), or on every dispatch (``oracle="always"``).

The same contract extends to the **bf16 float region** (GNMT's LSTM /
attention graph and the x86-resident float tails): float-region nodes
lower to :class:`FloatStep` programs that call the reference kernels
themselves and then apply the interpreter's bf16 write-back rounding
(:func:`repro.runtime.qkernels.round_float_outputs`), so float
macro-kernels are byte-identical to the per-node walk too.  LSTM-bearing
segments additionally grow a ``seqfuse`` variant: chains of ``lstm_step``
(or same-weight ``lstm_cell``) nodes threading h/c state collapse into
:class:`SeqFuseStep` / :class:`CellFuseStep`, which compute each chain's
whole-sequence input projection once instead of once per timestep —
identical reference calls over identical arrays, so still bit-exact.
Float steps bake no weights; they read constants from the
executor-seeded environment, keeping the pickled artifact small.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np
import numpy.typing as npt

from repro.dtypes import (
    ChannelQuantParams,
    NcoreDType,
    QuantParams,
    dequantize,
    dtype_info,
    quantize,
    quantize_multiplier,
    requantize,
    saturate,
    to_bfloat16,
)
from repro.graph.gir import Graph, Node
from repro.graph.loadable import NcoreLoadable
from repro.graph.partitioner import Segment
from repro.obs.metrics import get_metrics

Array = npt.NDArray[Any]
Env = dict[str, Array]

#: Artifact kind under which macro-kernel sets live in the compile cache.
CODEGEN_ARTIFACT_KIND = "codegen"

#: Largest integer magnitude float64 represents exactly.
_F64_EXACT_BOUND = 2**53

#: The int32 accumulator clamp the OUT unit applies (qkernels semantics).
_ACC_LO, _ACC_HI = -(2**31), 2**31 - 1

#: Variant strategy names (the lowering families emitted today).
STRATEGY_NEST = "nest"        # whole-loop-nest einsum/tensordot form
STRATEGY_ROWSWEEP = "rowsweep"  # fused per-tap row-sweep accumulation
STRATEGY_SEQFUSE = "seqfuse"  # fused LSTM timestep chains (float region)


def note_stat(stats: dict[str, int], key: str, amount: int = 1) -> None:
    """Bump a codegen statistic and mirror it to ``repro.obs`` metrics."""
    if amount <= 0:
        return
    stats[key] = stats.get(key, 0) + amount
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter(f"ncore.codegen.{key}").inc(amount)


class UnsupportedSegment(Exception):
    """Raised at codegen time when a segment has no macro-kernel form."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class CodegenDivergence(AssertionError):
    """A macro-kernel variant disagreed with its oracle (or a sibling
    variant) byte-for-byte — never expected; always a bug."""


# ----------------------------------------------------------------------
# Requantization spec: the OUT-unit datapath with precomputed constants
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RequantSpec:
    """Precomputed requantization of an int accumulator whose last axis is
    the output channel — per-tensor (one mult/shift) or per-channel
    (per-lane arrays), mirroring :func:`qkernels._requant_output`."""

    zero_point: int
    dtype: NcoreDType
    mult: int = 0
    shift: int = 0
    lane_mults: Array | None = None
    lane_shifts: Array | None = None

    @classmethod
    def build(cls, x_scale: float, w_qp: QuantParams | ChannelQuantParams,
              out_qp: QuantParams) -> "RequantSpec":
        if isinstance(w_qp, ChannelQuantParams):
            pairs = [
                quantize_multiplier(x_scale * scale / out_qp.scale)
                for scale in w_qp.scales
            ]
            return cls(
                zero_point=out_qp.zero_point, dtype=out_qp.dtype,
                lane_mults=np.array([p[0] for p in pairs], dtype=np.int64),
                lane_shifts=np.array([p[1] for p in pairs], dtype=np.int64),
            )
        mult, shift = quantize_multiplier(x_scale * w_qp.scale / out_qp.scale)
        return cls(
            zero_point=out_qp.zero_point, dtype=out_qp.dtype,
            mult=mult, shift=shift,
        )

    def apply(self, acc: Array) -> Array:
        """Requantize a clipped int64 accumulator to the narrow type."""
        acc = np.clip(acc, _ACC_LO, _ACC_HI)
        if self.lane_mults is None or self.lane_shifts is None:
            return requantize(
                acc.astype(np.int32), self.mult, self.shift,
                self.zero_point, self.dtype,
            )
        from repro.ncore.out import requantize_lanes

        channels = acc.shape[-1]
        flat = acc.astype(np.int32).reshape(-1, channels)
        values = requantize_lanes(
            flat,
            np.broadcast_to(self.lane_mults, flat.shape),
            np.broadcast_to(self.lane_shifts, flat.shape),
            np.full(flat.shape, self.zero_point, dtype=np.int64),
            self.dtype,
        )
        return saturate(values.reshape(acc.shape), self.dtype)


def _clamp(values: Array, activation: str, out_qp: QuantParams) -> Array:
    from repro.runtime.qkernels import _activation_clamp

    return np.asarray(
        _activation_clamp(values, activation, out_qp).astype(values.dtype)
    )


def _input_magnitude(qp: QuantParams) -> int:
    """Largest ``|code - zero_point|`` the input dtype can represent."""
    info = dtype_info(qp.dtype)
    return max(
        abs(int(info.min_value) - qp.zero_point),
        abs(int(info.max_value) - qp.zero_point),
    )


def _offset_weights(weights: Array, w_qp: QuantParams | ChannelQuantParams) -> Array:
    from repro.runtime.qkernels import _weight_offsets

    return np.asarray(_weight_offsets(weights, w_qp))


# ----------------------------------------------------------------------
# Steps: one macro-op per graph node, parameters precomputed at codegen
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KernelStep:
    """One lowered node: reads input names from the environment, writes
    its output name.  Subclasses hold everything precomputable."""

    node: str
    op: str
    inputs: tuple[str, ...]
    output: str

    def run(self, env: Env) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class QuantizeStep(KernelStep):
    out_qp: QuantParams = field(default_factory=lambda: QuantParams(1.0, 0))

    def run(self, env: Env) -> None:
        env[self.output] = quantize(env[self.inputs[0]], self.out_qp)


@dataclass(frozen=True)
class DequantizeStep(KernelStep):
    in_qp: QuantParams = field(default_factory=lambda: QuantParams(1.0, 0))

    def run(self, env: Env) -> None:
        env[self.output] = dequantize(env[self.inputs[0]], self.in_qp)


@dataclass(frozen=True)
class ConvStep(KernelStep):
    """conv2d / depthwise_conv2d / fully_connected with baked weights.

    ``strategy`` picks the loop-nest collapse; ``exact_f64`` records the
    codegen-time proof that every f64 partial sum stays below 2**53 (the
    int64 path is kept otherwise, still one whole-nest matmul).
    """

    kind: str = "conv2d"
    strategy: str = STRATEGY_NEST
    weights: Array = field(default_factory=lambda: np.zeros(0))
    bias: Array | None = None
    x_zp: int = 0
    stride: tuple[int, int] = (1, 1)
    padding: tuple[tuple[int, int], tuple[int, int]] = ((0, 0), (0, 0))
    activation: str = "none"
    out_qp: QuantParams = field(default_factory=lambda: QuantParams(1.0, 0))
    requant: RequantSpec = field(
        default_factory=lambda: RequantSpec(0, NcoreDType.UINT8, 1 << 30, 0)
    )
    exact_f64: bool = True

    # -- accumulation cores -------------------------------------------

    def _acc_dtype(self) -> type[np.floating[Any]] | type[np.signedinteger[Any]]:
        return np.float64 if self.exact_f64 else np.int64

    def _pad_input(self, x: Array) -> Array:
        (pt, pb), (pl, pr) = self.padding
        return np.asarray(np.pad(
            x.astype(self._acc_dtype()) - self.x_zp,
            ((0, 0), (pt, pb), (pl, pr), (0, 0)),
        ))

    def _conv_nest(self, xq: Array) -> Array:
        kh, kw, _, _ = self.weights.shape
        sh, sw = self.stride
        view = np.lib.stride_tricks.sliding_window_view(xq, (kh, kw), axis=(1, 2))
        view = view[:, ::sh, ::sw]
        # view: (n, oh, ow, cin, kh, kw) x weights (kh, kw, cin, cout)
        return np.asarray(np.tensordot(view, self.weights, axes=([3, 4, 5], [2, 0, 1])))

    def _conv_rowsweep(self, xq: Array) -> Array:
        kh, kw, cin, cout = self.weights.shape
        n, h, w, _ = xq.shape
        sh, sw = self.stride
        oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
        acc = np.zeros((n * oh * ow, cout), dtype=xq.dtype)
        for i in range(kh):
            for j in range(kw):
                patch = xq[:, i: i + oh * sh: sh, j: j + ow * sw: sw, :]
                acc += patch.reshape(-1, cin) @ self.weights[i, j]
        return acc.reshape(n, oh, ow, cout)

    def _depthwise_nest(self, xq: Array) -> Array:
        kh, kw, _ = self.weights.shape
        sh, sw = self.stride
        view = np.lib.stride_tricks.sliding_window_view(xq, (kh, kw), axis=(1, 2))
        view = view[:, ::sh, ::sw]
        # view: (n, oh, ow, c, kh, kw) x weights (kh, kw, c)
        return np.asarray(np.einsum("nhwcij,ijc->nhwc", view, self.weights))

    def _depthwise_rowsweep(self, xq: Array) -> Array:
        kh, kw, c = self.weights.shape
        n, h, w, _ = xq.shape
        sh, sw = self.stride
        oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
        acc = np.zeros((n, oh, ow, c), dtype=xq.dtype)
        for i in range(kh):
            for j in range(kw):
                acc += xq[:, i: i + oh * sh: sh, j: j + ow * sw: sw, :] * self.weights[i, j]
        return acc

    def _accumulate(self, x: Array) -> Array:
        if self.kind == "fully_connected":
            # nest: one f64 BLAS matmul; rowsweep: the int64 reference form.
            if self.strategy == STRATEGY_NEST and self.exact_f64:
                acc = (x.astype(np.float64) - self.x_zp) @ self.weights
            else:
                acc = (x.astype(np.int64) - self.x_zp) @ self.weights.astype(np.int64)
            return np.asarray(acc)
        xq = self._pad_input(x)
        if self.kind == "depthwise_conv2d":
            if self.strategy == STRATEGY_NEST:
                return self._depthwise_nest(xq)
            return self._depthwise_rowsweep(xq)
        if self.strategy == STRATEGY_NEST:
            return self._conv_nest(xq)
        return self._conv_rowsweep(xq)

    def run(self, env: Env) -> None:
        acc = self._accumulate(env[self.inputs[0]]).astype(np.int64)
        if self.bias is not None:
            acc = acc + self.bias
        out = self.requant.apply(acc)
        env[self.output] = _clamp(out, self.activation, self.out_qp)


@dataclass(frozen=True)
class AddStep(KernelStep):
    a_qp: QuantParams = field(default_factory=lambda: QuantParams(1.0, 0))
    b_qp: QuantParams = field(default_factory=lambda: QuantParams(1.0, 0))
    out_qp: QuantParams = field(default_factory=lambda: QuantParams(1.0, 0))
    activation: str = "none"

    def run(self, env: Env) -> None:
        from repro.runtime.qkernels import qadd

        env[self.output] = qadd(
            env[self.inputs[0]], self.a_qp, env[self.inputs[1]], self.b_qp,
            self.out_qp, self.activation,
        )


@dataclass(frozen=True)
class PoolStep(KernelStep):
    ksize: tuple[int, int] = (1, 1)
    stride: tuple[int, int] = (1, 1)
    padding: tuple[tuple[int, int], tuple[int, int]] = ((0, 0), (0, 0))

    def run(self, env: Env) -> None:
        from repro.runtime.qkernels import qavg_pool, qmax_pool

        fn = qmax_pool if self.op == "max_pool" else qavg_pool
        env[self.output] = fn(env[self.inputs[0]], self.ksize, self.stride, self.padding)


@dataclass(frozen=True)
class MeanStep(KernelStep):
    axis: tuple[int, ...] = (1, 2)
    count: int = 1
    in_qp: QuantParams = field(default_factory=lambda: QuantParams(1.0, 0))
    out_qp: QuantParams = field(default_factory=lambda: QuantParams(1.0, 0))

    def run(self, env: Env) -> None:
        from repro.runtime.qkernels import qrequant

        acc = np.sum(env[self.inputs[0]].astype(np.int64), axis=self.axis)
        mean_q = (acc + self.count // 2) // self.count
        if self.in_qp == self.out_qp:
            env[self.output] = saturate(mean_q, self.out_qp.dtype)
        else:
            env[self.output] = qrequant(
                saturate(mean_q, self.in_qp.dtype), self.in_qp, self.out_qp
            )


@dataclass(frozen=True)
class ConcatStep(KernelStep):
    in_qps: tuple[QuantParams, ...] = ()
    out_qp: QuantParams = field(default_factory=lambda: QuantParams(1.0, 0))
    axis: int = -1

    def run(self, env: Env) -> None:
        from repro.runtime.qkernels import qrequant

        parts = [
            qrequant(env[name], qp, self.out_qp)
            for name, qp in zip(self.inputs, self.in_qps, strict=True)
        ]
        env[self.output] = np.concatenate(parts, axis=self.axis)


@dataclass(frozen=True)
class ActivationStep(KernelStep):
    out_qp: QuantParams = field(default_factory=lambda: QuantParams(1.0, 0))

    def run(self, env: Env) -> None:
        env[self.output] = _clamp(env[self.inputs[0]], self.op, self.out_qp)


@dataclass(frozen=True)
class ReshapeStep(KernelStep):
    shape: tuple[int, ...] = ()

    def run(self, env: Env) -> None:
        env[self.output] = env[self.inputs[0]].reshape(self.shape)


@dataclass(frozen=True)
class IdentityStep(KernelStep):
    def run(self, env: Env) -> None:
        env[self.output] = env[self.inputs[0]]


# ----------------------------------------------------------------------
# Float-region steps (the bf16 lowering family, GNMT + x86 float tails)
# ----------------------------------------------------------------------

#: Placeholder graph for reference-eval steps.  ``execute_node`` only
#: consults the graph for quantize/dequantize (which never take this
#: path), so float-region nodes evaluate without the real graph — which
#: keeps the pickled artifacts small: float steps bake no weights, they
#: read constants from the environment the executor seeds.
_FLOAT_EVAL_GRAPH = Graph("codegen-float-eval")


def _round_bf16(value: Array, flag: bool) -> Array:
    """The float-region write-back rounding, per output.

    ``flag`` is precomputed at codegen time from the output tensor's
    dtype — exactly the per-name test
    :func:`repro.runtime.qkernels.round_float_outputs` applies, so a float
    step's stored value is byte-identical to the interpreter's.
    """
    if not flag:
        return value
    return np.asarray(to_bfloat16(np.asarray(value, dtype=np.float32)))


@dataclass(frozen=True)
class FloatStep(KernelStep):
    """Base for float-region steps.

    ``outs`` lists every node output (``output`` is the first — LSTM
    steps have two); ``rounds`` records, per output, whether the
    interpreter rounds it to bf16 on write-back."""

    outs: tuple[str, ...] = ()
    rounds: tuple[bool, ...] = ()

    def _store(self, env: Env, values: Sequence[Array]) -> None:
        for name, value, flag in zip(self.outs, values, self.rounds, strict=True):
            env[name] = _round_bf16(np.asarray(value), flag)


@dataclass(frozen=True)
class FloatEvalStep(FloatStep):
    """Fallback float step: the node's reference semantics verbatim (the
    same code path the interpreter's float region runs), plus rounding.
    Covers the x86-resident tails — batch_norm, softmax, mean, attention,
    elementwise — without a per-op lowering."""

    gnode: Node | None = None

    def run(self, env: Env) -> None:
        from repro.graph.reference import execute_node

        assert self.gnode is not None
        outs = execute_node(
            _FLOAT_EVAL_GRAPH, self.gnode, [env[name] for name in self.inputs]
        )
        self._store(env, outs)


@dataclass(frozen=True)
class FloatMatmulStep(FloatStep):
    """Float fully_connected / matmul with optional bias and fused
    activation, via the reference kernel (bit-identical by shared code)."""

    activation: str = "none"

    def run(self, env: Env) -> None:
        from repro.graph.reference import fully_connected

        bias = env[self.inputs[2]] if len(self.inputs) > 2 else None
        out = fully_connected(
            env[self.inputs[0]], env[self.inputs[1]], bias, self.activation
        )
        self._store(env, (out,))


@dataclass(frozen=True)
class EmbeddingStep(FloatStep):
    """Embedding gather: one fancy-index into the (env-resident) table."""

    def run(self, env: Env) -> None:
        table, ids = env[self.inputs[0]], env[self.inputs[1]]
        self._store(env, (table[ids.astype(np.int64)],))


@dataclass(frozen=True)
class FloatSliceStep(FloatStep):
    """Timestep slice with attributes resolved at codegen time."""

    axis: int = 0
    begin: int = 0
    size: int = 1
    squeeze: bool = False

    def run(self, env: Env) -> None:
        x = env[self.inputs[0]]
        index: list[slice] = [slice(None)] * x.ndim
        index[self.axis] = slice(self.begin, self.begin + self.size)
        out = x[tuple(index)]
        if self.squeeze:
            out = np.squeeze(out, axis=self.axis)
        self._store(env, (out,))


@dataclass(frozen=True)
class FloatConcatStep(FloatStep):
    axis: int = -1

    def run(self, env: Env) -> None:
        parts = [env[name] for name in self.inputs]
        self._store(env, (np.concatenate(parts, axis=self.axis),))


@dataclass(frozen=True)
class FloatReshapeStep(FloatStep):
    shape: tuple[int, ...] = ()

    def run(self, env: Env) -> None:
        self._store(env, (env[self.inputs[0]].reshape(self.shape),))


@dataclass(frozen=True)
class LstmCellStep(FloatStep):
    """One lstm_cell: fused gate matmul + sigmoid/tanh over the whole
    batch, via the reference kernel."""

    def run(self, env: Env) -> None:
        from repro.graph.reference import lstm_cell

        h, c = lstm_cell(
            env[self.inputs[0]], env[self.inputs[1]], env[self.inputs[2]],
            env[self.inputs[3]], env[self.inputs[4]],
        )
        self._store(env, (h, c))


@dataclass(frozen=True)
class LstmSeqStep(FloatStep):
    """One lstm_step node: whole-sequence input projection + recurrent
    combine.  The seqfuse variant replaces chains of these with a single
    :class:`SeqFuseStep` that amortizes the projection."""

    t: int = 0

    def run(self, env: Env) -> None:
        from repro.graph.reference import lstm_step

        h, c = lstm_step(
            env[self.inputs[0]], env[self.inputs[1]], env[self.inputs[2]],
            env[self.inputs[3]], env[self.inputs[4]], env[self.inputs[5]],
            self.t,
        )
        self._store(env, (h, c))


@dataclass(frozen=True)
class SeqFuseStep(KernelStep):
    """A fused chain of ``lstm_step`` nodes sharing (x_seq, wx, wh, bias).

    Computes the whole-sequence input projection **once** — the very same
    :func:`repro.graph.reference.lstm_step_project` call on the very same
    arrays each per-node reference makes — then threads the rounded h/c
    state through the per-step recurrent combines.  Because the projection
    and combine are the reference's own functions over identical operands,
    the chain's outputs are bit-identical to running it node by node; the
    fused form just stops re-projecting the sequence ``len(chain)`` times
    and dispatching ``len(chain)`` steps.
    """

    x_seq: str = ""
    wx: str = ""
    wh: str = ""
    bias: str = ""
    h_in: str = ""
    c_in: str = ""
    #: (t, h_out, c_out, round_h, round_c) per fused node, in chain order.
    chain: tuple[tuple[int, str, str, bool, bool], ...] = ()

    def run(self, env: Env) -> None:
        from repro.graph.reference import lstm_step_combine, lstm_step_project

        xp = lstm_step_project(env[self.x_seq], env[self.wx])
        wh, bias = env[self.wh], env[self.bias]
        h, c = env[self.h_in], env[self.c_in]
        for t, h_out, c_out, round_h, round_c in self.chain:
            h, c = lstm_step_combine(xp[..., t, :], wh, bias, h, c)
            h = _round_bf16(h, round_h)
            c = _round_bf16(c, round_c)
            env[h_out] = h
            env[c_out] = c


@dataclass(frozen=True)
class CellFuseStep(KernelStep):
    """A fused chain of same-weight ``lstm_cell`` nodes threading h/c
    state: one step object per chain instead of one per timestep."""

    weights: str = ""
    bias: str = ""
    h_in: str = ""
    c_in: str = ""
    #: (x_in, h_out, c_out, round_h, round_c) per fused node.
    chain: tuple[tuple[str, str, str, bool, bool], ...] = ()

    def run(self, env: Env) -> None:
        from repro.graph.reference import lstm_cell

        weights, bias = env[self.weights], env[self.bias]
        h, c = env[self.h_in], env[self.c_in]
        for x_in, h_out, c_out, round_h, round_c in self.chain:
            h, c = lstm_cell(env[x_in], weights, bias, h, c)
            h = _round_bf16(h, round_h)
            c = _round_bf16(c, round_c)
            env[h_out] = h
            env[c_out] = c


# ----------------------------------------------------------------------
# The picklable artifacts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class KernelVariant:
    """One lowering of a segment: an ordered step program."""

    strategy: str
    steps: tuple[KernelStep, ...]

    def run(self, env: Env) -> None:
        for step in self.steps:
            step.run(env)


@dataclass(frozen=True)
class MacroKernel:
    """The AOT-compiled form of one kernel segment.

    ``compute_cycles``/``macs`` are the cycle-exact counts recorded from
    the segment's Loadable at codegen time — the executor's timing model
    keeps using the Loadable schedules, so perf reports are byte-identical
    whichever tier executes.
    """

    name: str
    segment_index: int
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    variants: tuple[KernelVariant, ...]
    compute_cycles: int = 0
    macs: int = 0
    node_count: int = 0

    def strategies(self) -> list[str]:
        return [variant.strategy for variant in self.variants]


@dataclass
class MacroKernelSet:
    """Every macro-kernel of one compiled model, by segment index —
    the ``codegen`` artifact the compile cache stores under the model's
    content key (same fingerprint: graph + weights + NcoreConfig +
    pipeline)."""

    model_name: str
    kernels: dict[int, MacroKernel] = field(default_factory=dict)
    uncovered: dict[int, str] = field(default_factory=dict)

    @property
    def covered_segments(self) -> int:
        return len(self.kernels)

    @property
    def variant_count(self) -> int:
        return sum(len(k.variants) for k in self.kernels.values())

    def get(self, index: int) -> MacroKernel | None:
        return self.kernels.get(index)

    def coverage_fraction(self, total_segments: int | None = None) -> float:
        """Covered fraction of the model's segments (0.0 when empty).

        ``codegen_model`` visits every segment, so covered + uncovered is
        the segment count; pass ``total_segments`` to override."""
        total = (
            total_segments
            if total_segments is not None
            else len(self.kernels) + len(self.uncovered)
        )
        return len(self.kernels) / total if total else 0.0

    def uncovered_reason_counts(self) -> dict[str, int]:
        """Histogram of why segments stayed on the interpreter."""
        counts: dict[str, int] = {}
        for reason in self.uncovered.values():
            counts[reason] = counts.get(reason, 0) + 1
        return counts


# ----------------------------------------------------------------------
# Codegen: lower one segment's nodes into step programs
# ----------------------------------------------------------------------


def _qp(graph: Graph, name: str) -> QuantParams:
    qp = graph.tensor(name).quant
    if not isinstance(qp, QuantParams):
        raise UnsupportedSegment(f"tensor {name!r} lacks tensor quant params")
    return qp


def _constant(graph: Graph, name: str) -> Array:
    tensor = graph.tensor(name)
    if not tensor.is_constant:
        raise UnsupportedSegment(f"tensor {name!r} is not a bakeable constant")
    return np.asarray(tensor.data)


def _matmul_steps(graph: Graph, node: Node) -> tuple[ConvStep, ConvStep]:
    """Both variants of a conv2d / depthwise_conv2d / fully_connected."""
    x_qp = _qp(graph, node.inputs[0])
    w_tensor = graph.tensor(node.inputs[1])
    w_qp = w_tensor.quant
    if w_qp is None:
        raise UnsupportedSegment(f"weights {node.inputs[1]!r} lack quant params")
    out_qp = _qp(graph, node.outputs[0])
    weights = _constant(graph, node.inputs[1])
    bias: Array | None = None
    if len(node.inputs) > 2:
        bias = _constant(graph, node.inputs[2]).astype(np.int64)
    wq = _offset_weights(weights, w_qp)
    # f64 exactness proof: the largest |partial sum| any accumulation
    # order can produce is max|x - zp| * sum|w - zp| per output channel.
    magnitude = _input_magnitude(x_qp)
    if node.op == "depthwise_conv2d":
        tap_sum = np.abs(wq).sum(axis=(0, 1)).max() if wq.size else 0
    elif node.op == "fully_connected":
        tap_sum = np.abs(wq).sum(axis=0).max() if wq.size else 0
    else:
        tap_sum = np.abs(wq).sum(axis=(0, 1, 2)).max() if wq.size else 0
    exact = magnitude * int(tap_sum) < _F64_EXACT_BOUND
    common = dict(
        node=node.name, op=node.op, inputs=(node.inputs[0],),
        output=node.outputs[0], kind=node.op,
        weights=wq.astype(np.float64) if exact else wq,
        bias=bias, x_zp=x_qp.zero_point,
        stride=tuple(node.attrs.get("stride", (1, 1))),
        padding=_pad_attr(node),
        activation=node.attrs.get("activation") or "none",
        out_qp=out_qp,
        requant=RequantSpec.build(x_qp.scale, w_qp, out_qp),
        exact_f64=exact,
    )
    return (
        ConvStep(strategy=STRATEGY_NEST, **common),      # type: ignore[arg-type]
        ConvStep(strategy=STRATEGY_ROWSWEEP, **common),  # type: ignore[arg-type]
    )


def _pad_attr(node: Node) -> tuple[tuple[int, int], tuple[int, int]]:
    (pt, pb), (pl, pr) = node.attrs.get("padding", ((0, 0), (0, 0)))
    return ((int(pt), int(pb)), (int(pl), int(pr)))


#: Float-region ops with a reference-eval (FloatEvalStep) lowering: the
#: x86-resident float tails and the attention composite.  NMS stays
#: uncovered — its sort-driven control flow is the one op the paper kept
#: on x86 outright, and the interpreter fallback covers it bit-exactly.
_FLOAT_EVAL_OPS = frozenset(
    {
        "batch_norm", "softmax", "mean", "add", "mul", "relu", "relu6",
        "tanh", "sigmoid", "attention", "identity", "pad", "bias_add",
    }
)


def _float_rounds(graph: Graph, node: Node) -> tuple[bool, ...]:
    """Which outputs the interpreter rounds to bf16 on write-back."""
    return tuple(
        graph.tensor(name).type.dtype is NcoreDType.BF16 for name in node.outputs
    )


def _lower_float_node(graph: Graph, node: Node) -> tuple[KernelStep, ...]:
    """Steps for a float-region node (output quant is ``None``).

    Specialized macro-steps cover the hot GNMT ops (LSTM steps/cells,
    embedding gather, slice/concat/reshape, float fc); the reference-eval
    fallback covers the float tails.  Every step applies the
    ``round_float_outputs`` bf16 write-back rounding, so the program is
    byte-identical to the interpreter walk."""
    attrs = node.attrs
    base = dict(
        node=node.name, op=node.op, inputs=tuple(node.inputs),
        output=node.outputs[0], outs=tuple(node.outputs),
        rounds=_float_rounds(graph, node),
    )
    if node.op == "lstm_step":
        return (LstmSeqStep(t=int(attrs["t"]), **base),)  # type: ignore[arg-type]
    if node.op == "lstm_cell":
        return (LstmCellStep(**base),)  # type: ignore[arg-type]
    if node.op == "embedding":
        return (EmbeddingStep(**base),)  # type: ignore[arg-type]
    if node.op == "fully_connected":
        return (FloatMatmulStep(
            activation=attrs.get("activation") or "none", **base,  # type: ignore[arg-type]
        ),)
    if node.op == "slice":
        return (FloatSliceStep(
            axis=int(attrs["axis"]), begin=int(attrs["begin"]),
            size=int(attrs["size"]),
            squeeze=bool(attrs.get("squeeze", False)), **base,  # type: ignore[arg-type]
        ),)
    if node.op == "concat":
        return (FloatConcatStep(axis=int(attrs.get("axis", -1)), **base),)  # type: ignore[arg-type]
    if node.op == "reshape":
        return (FloatReshapeStep(shape=tuple(attrs["shape"]), **base),)  # type: ignore[arg-type]
    if node.op in _FLOAT_EVAL_OPS:
        return (FloatEvalStep(gnode=node, **base),)  # type: ignore[arg-type]
    raise UnsupportedSegment(f"float op {node.op!r} has no macro-kernel form")


def _lower_node(graph: Graph, node: Node) -> tuple[KernelStep, ...] | None:
    """The shared (strategy-independent) step for one node, or ``None``
    when the node is a matmul op with per-strategy forms."""
    out_name = node.outputs[0]
    out_tensor = graph.tensor(out_name)
    if out_tensor.quant is None and node.op != "quantize":
        if node.op == "dequantize" and out_tensor.type.dtype is not NcoreDType.BF16:
            return (DequantizeStep(
                in_qp=_qp(graph, node.inputs[0]), node=node.name, op=node.op,
                inputs=tuple(node.inputs), output=out_name,
            ),)
        return _lower_float_node(graph, node)
    if len(node.outputs) != 1:
        raise UnsupportedSegment(f"node {node.name!r} has multiple outputs")
    base = dict(node=node.name, op=node.op, inputs=tuple(node.inputs), output=out_name)
    if node.op == "quantize":
        return (QuantizeStep(out_qp=_qp(graph, out_name), **base),)  # type: ignore[arg-type]
    attrs = node.attrs
    if node.op in ("conv2d", "depthwise_conv2d", "fully_connected"):
        return None  # per-strategy, handled by _matmul_steps
    if node.op == "add":
        return (AddStep(
            a_qp=_qp(graph, node.inputs[0]), b_qp=_qp(graph, node.inputs[1]),
            out_qp=_qp(graph, out_name),
            activation=attrs.get("activation") or "none", **base,  # type: ignore[arg-type]
        ),)
    if node.op in ("max_pool", "avg_pool"):
        return (PoolStep(
            ksize=tuple(attrs["ksize"]), stride=tuple(attrs["stride"]),
            padding=_pad_attr(node), **base,  # type: ignore[arg-type]
        ),)
    if node.op == "mean":
        axis = tuple(attrs.get("axis", (1, 2)))
        shape = graph.tensor(node.inputs[0]).shape
        count = int(np.prod([shape[a] for a in axis]))
        return (MeanStep(
            axis=axis, count=count, in_qp=_qp(graph, node.inputs[0]),
            out_qp=_qp(graph, out_name), **base,  # type: ignore[arg-type]
        ),)
    if node.op == "concat":
        return (ConcatStep(
            in_qps=tuple(_qp(graph, name) for name in node.inputs),
            out_qp=_qp(graph, out_name),
            axis=int(attrs.get("axis", -1)), **base,  # type: ignore[arg-type]
        ),)
    if node.op in ("relu", "relu6"):
        return (ActivationStep(out_qp=_qp(graph, out_name), **base),)  # type: ignore[arg-type]
    if node.op == "reshape":
        return (ReshapeStep(shape=tuple(attrs["shape"]), **base),)  # type: ignore[arg-type]
    if node.op == "identity":
        return (IdentityStep(**base),)  # type: ignore[arg-type]
    raise UnsupportedSegment(f"op {node.op!r} has no macro-kernel form")


def _seq_chains(prev: LstmSeqStep, step: LstmSeqStep) -> bool:
    """Whether ``step`` continues a seqfuse chain: same (x_seq, wx, wh,
    bias) and its h/c inputs are the previous step's outputs."""
    return (
        prev.inputs[:4] == step.inputs[:4]
        and step.inputs[4] == prev.outs[0]
        and step.inputs[5] == prev.outs[1]
    )


def _cell_chains(prev: LstmCellStep, step: LstmCellStep) -> bool:
    """Whether ``step`` continues a cell chain: same (weights, bias) and
    threaded h/c state."""
    return (
        prev.inputs[1:3] == step.inputs[1:3]
        and step.inputs[3] == prev.outs[0]
        and step.inputs[4] == prev.outs[1]
    )


def _fuse_seq_run(run: list[LstmSeqStep]) -> SeqFuseStep:
    first, last = run[0], run[-1]
    return SeqFuseStep(
        node=f"{first.node}..{last.node}", op="lstm_step",
        inputs=first.inputs, output=last.outs[0],
        x_seq=first.inputs[0], wx=first.inputs[1], wh=first.inputs[2],
        bias=first.inputs[3], h_in=first.inputs[4], c_in=first.inputs[5],
        chain=tuple(
            (s.t, s.outs[0], s.outs[1], s.rounds[0], s.rounds[1]) for s in run
        ),
    )


def _fuse_cell_run(run: list[LstmCellStep]) -> CellFuseStep:
    first, last = run[0], run[-1]
    return CellFuseStep(
        node=f"{first.node}..{last.node}", op="lstm_cell",
        inputs=first.inputs, output=last.outs[0],
        weights=first.inputs[1], bias=first.inputs[2],
        h_in=first.inputs[3], c_in=first.inputs[4],
        chain=tuple(
            (s.inputs[0], s.outs[0], s.outs[1], s.rounds[0], s.rounds[1])
            for s in run
        ),
    )


def _fuse_lstm_chains(steps: list[KernelStep]) -> list[KernelStep] | None:
    """The seqfuse transform: collapse maximal consecutive runs of
    same-weight LSTM steps with threaded h/c state into single fused
    steps.  Returns ``None`` when no chain of length >= 2 exists (no
    seqfuse variant is emitted then)."""
    fused: list[KernelStep] = []
    changed = False
    i = 0
    while i < len(steps):
        step = steps[i]
        run: list[Any] = [step]
        if isinstance(step, LstmSeqStep):
            while (
                i + len(run) < len(steps)
                and isinstance(steps[i + len(run)], LstmSeqStep)
                and _seq_chains(run[-1], steps[i + len(run)])  # type: ignore[arg-type]
            ):
                run.append(steps[i + len(run)])
            if len(run) >= 2:
                fused.append(_fuse_seq_run(run))
                changed = True
                i += len(run)
                continue
        elif isinstance(step, LstmCellStep):
            while (
                i + len(run) < len(steps)
                and isinstance(steps[i + len(run)], LstmCellStep)
                and _cell_chains(run[-1], steps[i + len(run)])  # type: ignore[arg-type]
            ):
                run.append(steps[i + len(run)])
            if len(run) >= 2:
                fused.append(_fuse_cell_run(run))
                changed = True
                i += len(run)
                continue
        fused.append(step)
        i += 1
    return fused if changed else None


def compile_segment(
    graph: Graph,
    segment: Segment,
    index: int,
    name: str,
    loadable: NcoreLoadable | None = None,
) -> MacroKernel:
    """Lower one segment to a :class:`MacroKernel` (all variants).

    Raises :class:`UnsupportedSegment` when any node falls outside the
    quantized-kernel op set — the executor keeps the per-node interpreter
    for such segments, preserving bit-exactness everywhere.
    """
    if not segment.nodes:
        raise UnsupportedSegment("empty segment")
    nest_steps: list[KernelStep] = []
    sweep_steps: list[KernelStep] = []
    multi_variant = False
    for node in segment.nodes:
        shared = _lower_node(graph, node)
        if shared is None:
            nest, sweep = _matmul_steps(graph, node)
            nest_steps.append(nest)
            sweep_steps.append(sweep)
            multi_variant = True
        else:
            nest_steps.extend(shared)
            sweep_steps.extend(shared)
    variants = [KernelVariant(STRATEGY_NEST, tuple(nest_steps))]
    if multi_variant:
        variants.append(KernelVariant(STRATEGY_ROWSWEEP, tuple(sweep_steps)))
    seqfuse_steps = _fuse_lstm_chains(nest_steps)
    if seqfuse_steps is not None:
        variants.append(KernelVariant(STRATEGY_SEQFUSE, tuple(seqfuse_steps)))
    return MacroKernel(
        name=name,
        segment_index=index,
        inputs=tuple(segment.input_tensors(graph)),
        outputs=tuple(segment.output_tensors(graph)),
        variants=tuple(variants),
        compute_cycles=loadable.compute_cycles if loadable is not None else 0,
        macs=sum(k.macs for k in loadable.kernels) if loadable is not None else 0,
        node_count=len(segment.nodes),
    )


def codegen_model(
    graph: Graph,
    segments: Iterable[Segment],
    loadables: dict[int, NcoreLoadable],
    name: str,
    stats: dict[str, int] | None = None,
) -> MacroKernelSet:
    """Lower every supported segment of a partitioned graph.

    Unsupported segments (float regions, x86-only ops like NMS) are
    recorded with their reason; at runtime they fall back to the per-node
    interpreter, so Tier 3 is always whole-graph bit-exact.
    """
    stats = stats if stats is not None else {}
    kset = MacroKernelSet(model_name=name)
    for index, segment in enumerate(segments):
        try:
            kernel = compile_segment(
                graph, segment, index, f"{name}_seg{index}",
                loadable=loadables.get(index),
            )
        except UnsupportedSegment as unsupported:
            kset.uncovered[index] = unsupported.reason
            note_stat(stats, "uncovered_segments")
            continue
        kset.kernels[index] = kernel
        note_stat(stats, "kernels")
        note_stat(stats, "variants", len(kernel.variants))
        note_stat(stats, "steps", sum(len(v.steps) for v in kernel.variants))
    return kset


# ----------------------------------------------------------------------
# Runtime: benchmark-and-pin multi-kernel dispatch
# ----------------------------------------------------------------------

#: Computes a segment's reference outputs from a (read-only) environment.
OracleFn = Callable[[Env], dict[str, Array]]


def _outputs_equal(a: dict[str, Array], b: dict[str, Array]) -> bool:
    for name, value in a.items():
        other = b[name]
        if (
            value.shape != other.shape
            or value.dtype != other.dtype
            or np.asarray(value).tobytes() != np.asarray(other).tobytes()
        ):
            return False
    return True


class MultiKernelDispatcher:
    """Benchmark a macro-kernel's variants once, pin the winner.

    The PyTorch-Inductor multi-kernel pattern: on the first dispatch of a
    (kernel, input-shapes) pair every variant runs on the same inputs,
    their outputs are cross-checked byte-for-byte, wall time picks the
    winner, and only the winner ever runs again.  ``oracle`` controls the
    interpreter differential: ``"first"`` verifies on the benchmark
    dispatch, ``"always"`` on every dispatch, ``"off"`` never.
    """

    def __init__(self, oracle: str = "first") -> None:
        if oracle not in ("off", "first", "always"):
            raise ValueError(f"unknown oracle mode {oracle!r}")
        self.oracle = oracle
        self.stats: dict[str, int] = {}
        #: (kernel name, shape key) -> winning variant index.
        self._winners: dict[tuple[str, tuple[tuple[int, ...], ...]], int] = {}
        #: (kernel name, strategy) -> times that variant actually ran.
        self.variant_runs: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------

    def _shape_key(self, kernel: MacroKernel, env: Env) -> tuple[tuple[int, ...], ...]:
        return tuple(tuple(env[name].shape) for name in kernel.inputs)

    def winner_for(self, kernel: MacroKernel, env: Env) -> str | None:
        """The pinned strategy for these input shapes (None = not yet)."""
        index = self._winners.get((kernel.name, self._shape_key(kernel, env)))
        return kernel.variants[index].strategy if index is not None else None

    def _note_run(self, kernel: MacroKernel, variant: KernelVariant) -> None:
        key = (kernel.name, variant.strategy)
        self.variant_runs[key] = self.variant_runs.get(key, 0) + 1

    def _check_oracle(
        self, kernel: MacroKernel, env: Env, outputs: dict[str, Array],
        oracle_fn: OracleFn | None,
    ) -> None:
        if oracle_fn is None:
            return
        note_stat(self.stats, "oracle_checks")
        expected = oracle_fn(env)
        if not _outputs_equal(outputs, expected):
            raise CodegenDivergence(
                f"macro-kernel {kernel.name!r} diverged from the "
                "interpreter oracle"
            )

    # ------------------------------------------------------------------

    def dispatch(
        self, kernel: MacroKernel, env: Env, oracle_fn: OracleFn | None = None
    ) -> None:
        """Run ``kernel`` against ``env`` in place (winner or benchmark)."""
        note_stat(self.stats, "dispatches")
        key = (kernel.name, self._shape_key(kernel, env))
        pinned = self._winners.get(key)
        if pinned is not None:
            variant = kernel.variants[pinned]
            self._note_run(kernel, variant)
            variant.run(env)
            if self.oracle == "always":
                outputs = {name: env[name] for name in kernel.outputs}
                self._check_oracle(kernel, env, outputs, oracle_fn)
            return
        self._winners[key] = self._benchmark(
            kernel, env, oracle_fn if self.oracle != "off" else None
        )

    def _benchmark(
        self, kernel: MacroKernel, env: Env, oracle_fn: OracleFn | None
    ) -> int:
        """First dispatch: time every variant, cross-check, commit winner."""
        note_stat(self.stats, "benchmarks")
        runs: list[tuple[float, Env]] = []
        for variant in kernel.variants:
            scratch = dict(env)
            start = time.perf_counter()
            variant.run(scratch)
            runs.append((time.perf_counter() - start, scratch))
            self._note_run(kernel, variant)
        first = {name: runs[0][1][name] for name in kernel.outputs}
        for seconds, scratch in runs[1:]:
            outputs = {name: scratch[name] for name in kernel.outputs}
            if not _outputs_equal(first, outputs):
                raise CodegenDivergence(
                    f"macro-kernel {kernel.name!r} variants disagree "
                    f"byte-for-byte ({kernel.strategies()})"
                )
        self._check_oracle(kernel, env, first, oracle_fn)
        winner = min(range(len(runs)), key=lambda i: runs[i][0])
        strategy = kernel.variants[winner].strategy
        note_stat(self.stats, f"wins.{strategy}")
        env.update(runs[winner][1])
        return winner


__all__ = [
    "CODEGEN_ARTIFACT_KIND",
    "CellFuseStep",
    "CodegenDivergence",
    "FloatEvalStep",
    "FloatStep",
    "KernelStep",
    "KernelVariant",
    "LstmCellStep",
    "LstmSeqStep",
    "MacroKernel",
    "MacroKernelSet",
    "MultiKernelDispatcher",
    "RequantSpec",
    "STRATEGY_NEST",
    "STRATEGY_ROWSWEEP",
    "STRATEGY_SEQFUSE",
    "SeqFuseStep",
    "UnsupportedSegment",
    "codegen_model",
    "compile_segment",
    "note_stat",
]
