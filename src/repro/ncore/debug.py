"""Ncore debug features (section IV-F).

Three configurable facilities, all controlled by the runtime:

- *event logging*: a 1,024-entry circular buffer that can be written and
  read dynamically without interfering with execution (no performance
  penalty);
- *performance counters*: configurable with an initial offset and optional
  breakpointing at counter wraparound;
- *n-step breakpointing*: pause execution every n clock cycles so the
  runtime can inspect machine state.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EventRecord:
    """One entry in the event log."""

    cycle: int
    tag: int
    pc: int


class EventLog:
    """The 1,024-entry circular event buffer.

    Logging never stalls Ncore (section IV-F), so there is no cycle cost
    associated with :meth:`record`.  When the buffer wraps, the oldest
    entries are overwritten, as in a hardware circular buffer.
    """

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self._entries: list[EventRecord] = []
        self._total = 0

    def record(self, cycle: int, tag: int, pc: int) -> None:
        record = EventRecord(cycle, tag, pc)
        if len(self._entries) == self.capacity:
            self._entries[self._total % self.capacity] = record
        else:
            self._entries.append(record)
        self._total += 1

    def drain(self) -> list[EventRecord]:
        """Read out all buffered events (x86-side), oldest first."""
        if self._total <= self.capacity:
            out = list(self._entries)
        else:
            split = self._total % self.capacity
            out = self._entries[split:] + self._entries[:split]
        self._entries = []
        self._total = 0
        return out

    @property
    def dropped(self) -> int:
        """Events overwritten before being drained."""
        return max(0, self._total - self.capacity)

    @property
    def overflowed(self) -> bool:
        """True when more events were recorded than fit since last drain."""
        return self._total > self.capacity

    def __len__(self) -> int:
        return min(self._total, self.capacity)


class PerfCounter:
    """One performance counter with offset and wraparound breakpointing.

    The counter is ``bits`` wide; it can be configured with an initial
    offset so that it wraps (and optionally breakpoints) after a chosen
    number of increments — the mechanism section IV-F describes for
    breaking "at counter wraparound".
    """

    def __init__(self, name: str, bits: int = 48) -> None:
        self.name = name
        self.bits = bits
        self._modulus = 1 << bits
        self.value = 0
        self.break_on_wrap = False
        self.wrapped = False

    def configure(self, offset: int = 0, break_on_wrap: bool = False) -> None:
        self.value = offset % self._modulus
        self.break_on_wrap = break_on_wrap
        self.wrapped = False

    def add(self, amount: int = 1) -> bool:
        """Increment; returns True if a wraparound breakpoint fired."""
        before = self.value
        self.value = (self.value + amount) % self._modulus
        if self.value < before or amount >= self._modulus:
            self.wrapped = True
            return self.break_on_wrap
        return False
