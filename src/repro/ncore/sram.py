"""Ncore SRAM models: the data/weight row memories and the instruction RAM.

Section IV-C: reads and writes take one clock for an entire 4096-byte row;
both RAMs can be read each clock but only one written per clock; bus-side
accesses are row-buffered so they do not interfere with execution; the RAMs
implement 64-bit ECC that corrects single-bit errors and detects (but does
not correct) double-bit errors.  The instruction RAM is double buffered and
augmented with a 4 KB ROM.
"""

from __future__ import annotations

import numpy as np

from repro.isa import Instruction


class EccError(Exception):
    """An uncorrectable (2-bit) ECC error was detected on a RAM read."""

    def __init__(self, name: str, row: int) -> None:
        super().__init__(f"uncorrectable ECC error in {name} row {row}")
        self.row = row


class RowMemory:
    """A row-addressed SRAM bank (the data RAM or the weight RAM).

    The backing store is a (rows, row_bytes) uint8 array.  ECC is modelled
    at 64-bit granularity: :meth:`inject_bit_error` flips stored bits the
    way a particle strike would; on the next read of that row, single-bit
    flips within a 64-bit word are corrected (and counted) while double-bit
    flips raise :class:`EccError`, matching the correct-1/detect-2
    behaviour described in section IV-C.2.
    """

    ECC_WORD_BYTES = 8

    def __init__(self, rows: int, row_bytes: int, name: str = "ram") -> None:
        self.rows = rows
        self.row_bytes = row_bytes
        self.name = name
        self.data = np.zeros((rows, row_bytes), dtype=np.uint8)
        # Map row -> {ecc word index -> set of flipped bit positions}.
        self._injected: dict[int, dict[int, set[int]]] = {}
        self.corrected_errors = 0
        self.reads = 0
        self.writes = 0

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"{self.name} row {row} out of range (0..{self.rows - 1})")

    def read_row(self, row: int) -> np.ndarray:
        """Read one full row (a copy). One clock cycle in hardware."""
        self._check_row(row)
        self.reads += 1
        flips = self._injected.pop(row, None)
        if flips is not None:
            for word, bits in flips.items():
                if len(bits) >= 2:
                    self._injected[row] = flips  # leave state for inspection
                    raise EccError(self.name, row)
                # Single-bit error: correct it in the backing store.
                for bit in bits:
                    byte = word * self.ECC_WORD_BYTES + bit // 8
                    self.data[row, byte] ^= np.uint8(1 << (bit % 8))
                    self.corrected_errors += 1
        return self.data[row].copy()

    def write_row(self, row: int, values: np.ndarray) -> None:
        """Write one full row. One clock cycle in hardware."""
        self._check_row(row)
        if values.shape != (self.row_bytes,):
            raise ValueError(
                f"row writes must be exactly {self.row_bytes} bytes, got {values.shape}"
            )
        self.writes += 1
        self.data[row] = values.astype(np.uint8, copy=False)
        self._injected.pop(row, None)  # fresh write re-encodes the ECC

    def read_bytes(self, offset: int, length: int) -> bytes:
        """Bus-side (row-buffered) byte read, used by x86/DMA accesses."""
        if offset < 0 or offset + length > self.rows * self.row_bytes:
            raise IndexError(f"{self.name} byte range out of bounds")
        return self.data.reshape(-1)[offset : offset + length].tobytes()

    def write_bytes(self, offset: int, payload: bytes) -> None:
        """Bus-side (row-buffered) byte write, used by x86/DMA accesses."""
        if offset < 0 or offset + len(payload) > self.rows * self.row_bytes:
            raise IndexError(f"{self.name} byte range out of bounds")
        flat = self.data.reshape(-1)
        flat[offset : offset + len(payload)] = np.frombuffer(payload, dtype=np.uint8)
        first_row = offset // self.row_bytes
        last_row = (offset + len(payload) - 1) // self.row_bytes
        for row in range(first_row, last_row + 1):
            self._injected.pop(row, None)

    def inject_bit_error(self, row: int, byte: int, bit: int) -> None:
        """Flip one stored bit (fault injection for ECC tests)."""
        self._check_row(row)
        if not 0 <= byte < self.row_bytes or not 0 <= bit < 8:
            raise ValueError("bit position out of range")
        self.data[row, byte] ^= np.uint8(1 << bit)
        word = byte // self.ECC_WORD_BYTES
        bitpos = (byte % self.ECC_WORD_BYTES) * 8 + bit
        self._injected.setdefault(row, {}).setdefault(word, set()).add(bitpos)


class InstructionRam:
    """The 8 KB double-buffered instruction RAM plus the 4 KB ROM.

    Each bank holds ``bank_instructions`` decoded instructions.  Any x86
    core can fill the *inactive* bank while Ncore executes from the active
    one (section IV-C.1), so instruction loading never stalls execution;
    writing the active bank while the machine is running is an error.
    """

    def __init__(self, bank_instructions: int, rom_instructions: int) -> None:
        self.bank_instructions = bank_instructions
        self.rom_instructions = rom_instructions
        self.banks: list[list[Instruction]] = [[], []]
        self.rom: list[Instruction] = []
        self.active_bank = 0

    def load_bank(self, bank: int, program: list[Instruction], running: bool = False) -> None:
        """Fill one bank with a program (decoded instructions)."""
        if bank not in (0, 1):
            raise ValueError("instruction RAM has two banks: 0 and 1")
        if running and bank == self.active_bank:
            raise RuntimeError(
                "cannot load the active instruction RAM bank while Ncore executes; "
                "load the inactive bank and swap"
            )
        if len(program) > self.bank_instructions:
            raise ValueError(
                f"program of {len(program)} instructions exceeds bank capacity "
                f"of {self.bank_instructions}"
            )
        self.banks[bank] = list(program)

    def load_rom(self, program: list[Instruction]) -> None:
        """Install ROM contents (self-test and common routines)."""
        if len(program) > self.rom_instructions:
            raise ValueError("program exceeds ROM capacity")
        self.rom = list(program)

    def swap(self) -> None:
        """Switch execution to the other bank (double-buffer flip)."""
        self.active_bank ^= 1

    def fetch(self, pc: int) -> Instruction:
        """Fetch from the active bank; ROM is mapped after the bank."""
        bank = self.banks[self.active_bank]
        if 0 <= pc < len(bank):
            return bank[pc]
        rom_pc = pc - self.bank_instructions
        if 0 <= rom_pc < len(self.rom):
            return self.rom[rom_pc]
        raise IndexError(f"instruction fetch from unmapped pc {pc}")
