"""Ncore DMA engines.

Section IV-A/C: Ncore can sustain simultaneous DMA reads, DMA writes, x86
reads and x86 writes while executing.  DMA reaches system DRAM through the
driver-configured base-address-register window (up to 4 GB without dynamic
reconfiguration), and can optionally read through the SoC's shared L3
cache, which slightly increases latency but makes the read coherent.

The engine model is functional-plus-timing: the byte copy happens when the
transfer is started, while ``busy_until`` tracks when the engine would
actually finish so that DMA_WAIT instructions stall the correct number of
cycles and overlap between compute and DMA is modelled faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instruction import DMAOp
from repro.ncore.sram import RowMemory
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

# Re-exported name used throughout: a descriptor is just the ISA's DMAOp.
DmaDescriptor = DMAOp


class LinearMemory:
    """A flat byte-addressable memory with a bandwidth/latency model.

    This is the minimal interface the DMA engine needs from the SoC side;
    :mod:`repro.soc.memory` builds the full DRAM/L3 models on top of it.
    """

    def __init__(
        self,
        size: int,
        bandwidth_bytes_per_cycle: float = 40.96,
        latency_cycles: int = 75,
    ) -> None:
        # Defaults model DDR4-3200 x4 channels (102 GB/s) at 2.5 GHz.
        self.size = size
        self.bandwidth_bytes_per_cycle = bandwidth_bytes_per_cycle
        self.latency_cycles = latency_cycles
        self._chunks: dict[int, np.ndarray] = {}  # 1 MB pages, lazily allocated
        self._page = 1 << 20

    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or addr + length > self.size:
            raise IndexError(f"memory access [{addr}, {addr + length}) out of bounds")

    def read(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        out = bytearray(length)
        pos = 0
        while pos < length:
            page, offset = divmod(addr + pos, self._page)
            take = min(length - pos, self._page - offset)
            chunk = self._chunks.get(page)
            if chunk is not None:
                out[pos : pos + take] = chunk[offset : offset + take].tobytes()
            pos += take
        return bytes(out)

    def write(self, addr: int, payload: bytes) -> None:
        self._check(addr, len(payload))
        pos = 0
        while pos < len(payload):
            page, offset = divmod(addr + pos, self._page)
            take = min(len(payload) - pos, self._page - offset)
            chunk = self._chunks.get(page)
            if chunk is None:
                chunk = np.zeros(self._page, dtype=np.uint8)
                self._chunks[page] = chunk
            chunk[offset : offset + take] = np.frombuffer(
                payload[pos : pos + take], dtype=np.uint8
            )
            pos += take
    def transfer_cycles(self, num_bytes: int) -> int:
        """Cycles to move ``num_bytes`` including fixed access latency."""
        return self.latency_cycles + int(np.ceil(num_bytes / self.bandwidth_bytes_per_cycle))


@dataclass
class _WindowMapping:
    """One DMA base address register: maps a window slot to a DRAM base."""

    dram_base: int


class DmaEngine:
    """One DMA engine moving whole rows between system memory and the RAMs.

    The kernel driver is the sole gatekeeper of the base-address registers
    (section V-D): user code supplies window-relative addresses and the
    engine translates them through driver-configured mappings.
    """

    def __init__(
        self,
        name: str,
        memory: LinearMemory,
        window_bytes: int = 4 << 30,
        l3_extra_latency: int = 20,
    ) -> None:
        self.name = name
        self.memory = memory
        self.window_bytes = window_bytes
        self.l3_extra_latency = l3_extra_latency
        self._window_base: int | None = None
        self.busy_until = 0
        self.bytes_moved = 0
        self.transfers = 0
        self.l3 = None  # optionally attached by the SoC (repro.soc.cache)
        # Shadow-SRAM sanitizer hook (repro.sanitize); armed by the machine.
        self.sanitizer = None

    def configure_window(self, dram_base: int) -> None:
        """Driver-side: point the DMA window at a DRAM region."""
        if dram_base < 0 or dram_base + self.window_bytes > self.memory.size:
            raise ValueError("DMA window does not fit in system memory")
        self._window_base = dram_base

    def reset_timing(self) -> None:
        """Clear the timing/statistics state on machine reset.

        The machine's cycle counter restarts from zero on reset; a stale
        ``busy_until`` from the previous program would otherwise make the
        first DMA_WAIT of the next program stall against a transfer that
        belongs to a dead execution — exactly the hazard a long-lived,
        engine-managed machine that is reset between queries would hit.
        The driver-configured window mapping is *not* touched: base
        address registers are kernel state and survive device resets.
        """
        self.busy_until = 0
        self.bytes_moved = 0
        self.transfers = 0

    def _translate(self, window_addr: int, length: int) -> int:
        if self._window_base is None:
            raise RuntimeError(
                f"DMA engine {self.name}: window not configured by the driver"
            )
        if window_addr < 0 or window_addr + length > self.window_bytes:
            raise IndexError(
                f"DMA address [{window_addr}, {window_addr + length}) outside the "
                f"{self.window_bytes}-byte window"
            )
        return self._window_base + window_addr

    def start(
        self,
        descriptor: DmaDescriptor,
        data_ram: RowMemory,
        weight_ram: RowMemory,
        now_cycle: int,
    ) -> int:
        """Begin a transfer; returns the cycle at which it completes."""
        ram = weight_ram if descriptor.target_weight_ram else data_ram
        length = descriptor.rows * ram.row_bytes
        dram_addr = self._translate(descriptor.dram_addr, length)
        ram_offset = descriptor.ram_row * ram.row_bytes
        cycles = self.memory.transfer_cycles(length)
        if descriptor.through_l3:
            # "The extra hop through the L3 minimally increases the latency
            # to DRAM" (section IV-A).
            cycles += self.l3_extra_latency
        end_cycle = max(self.busy_until, now_cycle) + cycles
        if self.sanitizer is not None:
            # Before the functional copy, so an out-of-bounds descriptor is
            # recorded as a finding before the RAM model raises.
            self.sanitizer.on_dma_start(
                self.name,
                "weight" if descriptor.target_weight_ram else "data",
                descriptor, ram.rows, ram.row_bytes,
                end_cycle - cycles, end_cycle,
            )
        if descriptor.write_to_dram:
            self.memory.write(dram_addr, ram.read_bytes(ram_offset, length))
        else:
            payload = self.memory.read(dram_addr, length)
            if descriptor.through_l3 and self.l3 is not None:
                payload = self.l3.coherent_read(dram_addr, length, payload)
            ram.write_bytes(ram_offset, payload)
        self.busy_until = end_cycle
        self.bytes_moved += length
        self.transfers += 1
        tracer = get_tracer()
        if tracer.enabled:
            direction = "wr" if descriptor.write_to_dram else "rd"
            tracer.add_cycle_span(
                f"{self.name}.{direction}", "dma",
                self.busy_until - cycles, self.busy_until,
                args={
                    "bytes": length,
                    "ram": "weight" if descriptor.target_weight_ram else "data",
                    "through_l3": bool(descriptor.through_l3),
                    "dram_addr": dram_addr,
                },
            )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("dma.bytes_moved", unit="B").inc(length)
            metrics.counter(f"dma.{self.name}.bytes", unit="B").inc(length)
            metrics.counter("dma.transfers").inc()
        return self.busy_until
