"""Ncore configuration parameters.

All defaults are the shipped CHA configuration from the paper (sections
III and IV).  The slice-based layout was explicitly designed so that "adding
or removing slices alters Ncore's breadth, while increasing or decreasing
SRAM capacity alters Ncore's height" — this dataclass exposes exactly those
two knobs, which the ablation benchmarks sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

ROW_BYTES_PER_SLICE = 256  # each slice is 256 bytes wide (section IV-B)
BROADCAST_GROUP_LANES = 64  # lanes per broadcast group (section IV-D.3)


@dataclass(frozen=True)
class NcoreConfig:
    """Architectural parameters of one Ncore instance."""

    slices: int = 16                     # 16 slices -> 4096-byte rows
    sram_rows: int = 2048                # rows per RAM bank (2 banks/slice)
    iram_bytes: int = 8 * 1024           # double-buffered instruction RAM
    irom_bytes: int = 4 * 1024           # instruction ROM
    clock_hz: float = 2.5e9              # shared CHA frequency domain
    event_log_entries: int = 1024        # debug event buffer (section IV-F)
    dma_window_bytes: int = 4 << 30      # DMA base-address-register window

    def __post_init__(self) -> None:
        if self.slices < 1:
            raise ValueError("Ncore needs at least one slice")
        if self.sram_rows < 1:
            raise ValueError("RAMs need at least one row")

    @property
    def row_bytes(self) -> int:
        """Width of one RAM row / the SIMD datapath, in bytes (4096)."""
        return self.slices * ROW_BYTES_PER_SLICE

    @property
    def lanes(self) -> int:
        """Byte-wise execution lanes (= MAC units), 4096 in CHA."""
        return self.row_bytes

    @property
    def broadcast_groups(self) -> int:
        """Broadcast groups per row (64 in CHA): each group is 64 lanes
        serving one output channel, so this is the channel parallelism of
        one W x K pass.  Scales with ``slices`` — breadth adds groups."""
        return self.row_bytes // BROADCAST_GROUP_LANES

    @property
    def data_ram_bytes(self) -> int:
        """Data RAM capacity (8 MB in CHA)."""
        return self.sram_rows * self.row_bytes

    @property
    def weight_ram_bytes(self) -> int:
        """Weight RAM capacity (8 MB in CHA)."""
        return self.sram_rows * self.row_bytes

    @property
    def total_ram_bytes(self) -> int:
        """Total Ncore RAM (16 MB in CHA)."""
        return self.data_ram_bytes + self.weight_ram_bytes

    @property
    def iram_instructions(self) -> int:
        """Instructions per IRAM bank (the IRAM is double buffered)."""
        return self.iram_bytes // 2 // 16

    @property
    def irom_instructions(self) -> int:
        return self.irom_bytes // 16

    def peak_ops_per_second(self, npu_cycles: int = 1) -> float:
        """Peak throughput in ops/sec for an op with the given issue latency.

        A MAC counts as two operations (multiply + add), giving the paper's
        20.48 TOPS for int8 (4096 lanes x 2 ops x 2.5 GHz) and 6.83 TOPS for
        bfloat16 (3-cycle issue), matching Table II.
        """
        return self.lanes * 2 * self.clock_hz / npu_cycles

    def sram_bandwidth_bytes_per_second(self) -> float:
        """Aggregate internal SRAM throughput.

        Both the data and weight RAM can be read every clock (one row each),
        giving the paper's 20 TB/s figure (2 x 4096 B x 2.5 GHz).
        """
        return 2 * self.row_bytes * self.clock_hz


# The shipped CHA configuration.
CHA_NCORE = NcoreConfig()
