"""Fast-path execution tier for the Ncore simulator: trace-fused loops.

The interpreter in :mod:`repro.ncore.machine` pays one Python dispatch per
hardware-loop iteration — the dominant cost of every simulated workload.
This module compiles side-effect-analyzable loops (``repeat > 1``
instructions and ``LOOP_BEGIN``…``LOOP_END`` regions) into *fused traces*:
closed-form recurrences over (RAM rows, NDU registers, address-register
strides) that execute all N iterations as a handful of vectorized numpy
calls while producing **bit-identical, cycle-exact** machine state.

Legality (see :meth:`repro.isa.Instruction.fusion_blockers`): only BYPASS /
ROTATE / BROADCAST64 NDU ops, non-CMPGT NPU ops, no OUT ops, and NOP /
ADD_ADDR sequencer ops.  Every register recurrence must classify as one of:

- *invariant* — never written in the trip;
- *self-rotation* — ``r <- rot(r, s)``, closed form ``rot(r0, s*t)``;
- *derived* — ``q <- rot(p, s)`` with ``p`` invariant or self-rotating;
- *stream* — a pure function of RAM rows / constants at trip ``t``.

Anything else (and any condition the static model cannot prove: RAM bounds,
pending ECC corrections, perf-counter wraparound breakpoints, n-step
windows, accumulator saturation) falls back to the interpreter — possibly
*mid-trace*, committing only the iterations proven exact.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Sequence, Union

import numpy as np
import numpy.typing as npt

from repro.dtypes import ACC_MAX, ACC_MIN, NcoreDType, dtype_info
from repro.isa.instruction import (
    Instruction,
    NDUOpcode,
    NPUOp,
    NPUOpcode,
    OutOpcode,
    RotateDirection,
    SeqOpcode,
)
from repro.isa.operands import NUM_ADDR_REGS, Operand, OperandKind
from repro.ncore.config import CHA_NCORE
from repro.ncore.ndu import BROADCAST_GROUP
from repro.ncore.npu import SLICE_LANES
from repro.obs.metrics import get_metrics

if TYPE_CHECKING:
    from repro.ncore.config import NcoreConfig
    from repro.ncore.debug import PerfCounter
    from repro.ncore.machine import Ncore
    from repro.ncore.sram import RowMemory

Array = npt.NDArray[Any]

#: dlast's slot in the 5-element state vector (after NDU registers n0..n3).
_DLAST = 4

#: Flat bytes of issue state per execution block: bounds peak matrix memory
#: while keeping the vectorization factor high enough that numpy dominates
#: dispatch cost.  Equals 1024 issues at the CHA row width; wider configs
#: get proportionally fewer issues per block so memory stays bounded.
_BLOCK_TARGET_BYTES = 1024 * CHA_NCORE.row_bytes

#: Compile-time cap on issues per trip (keeps trace compilation O(small)).
_MAX_TRIP_ISSUES = 256

_FASTPATH_DEFAULT = True


def set_fastpath_default(enabled: bool) -> None:
    """Set the process-wide default for ``Ncore(fastpath=None)``."""
    global _FASTPATH_DEFAULT
    _FASTPATH_DEFAULT = bool(enabled)


def get_fastpath_default() -> bool:
    """The process-wide default used when ``Ncore(fastpath=None)``."""
    return _FASTPATH_DEFAULT


def note_stat(stats: dict[str, int], key: str, amount: int = 1) -> None:
    """Bump a fastpath statistic and mirror it to ``repro.obs`` metrics."""
    if amount <= 0:
        return
    stats[key] = stats.get(key, 0) + amount
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter(f"ncore.fastpath.{key}").inc(amount)


class UnsupportedTrace(Exception):
    """Raised at compile time when a loop cannot be legally fused."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ----------------------------------------------------------------------
# Symbolic row expressions (per-trip closed forms)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Init:
    """Value of state element ``index`` entering the trip (0..3 = NDU
    registers, 4 = dlast)."""

    index: int


@dataclass(frozen=True)
class _RamRow:
    """RAM row ``addr[reg] + offset + stride[reg] * t`` at trip ``t``."""

    ram: str  # "data" | "weight"
    reg: int
    offset: int


@dataclass(frozen=True)
class _Const:
    """A row that is constant across the whole trace."""

    kind: str  # "imm" | "zero" | "out_low" | "out_high"
    value: int = 0


@dataclass(frozen=True)
class _Rot:
    """``np.roll(src, shift)`` with the shift normalized into [1, R)."""

    src: "_Expr"
    shift: int


@dataclass(frozen=True)
class _Bcast:
    """broadcast64 of ``src`` with byte index ``addr[reg] + offset +
    stride[reg] * t`` (mod 64) at trip ``t``."""

    src: "_Expr"
    reg: int
    offset: int


_Expr = Union[_Init, _RamRow, _Const, _Rot, _Bcast]


def _has_init(expr: _Expr) -> bool:
    if isinstance(expr, _Init):
        return True
    if isinstance(expr, (_Rot, _Bcast)):
        return _has_init(expr.src)
    return False


@dataclass(frozen=True)
class _RegPlan:
    """Closed-form recurrence of one state element across trips."""

    mode: str  # "inv" | "selfrot" | "derived" | "stream"
    shift: int = 0  # selfrot: per-trip shift; derived: final rotation
    base: int = 0  # derived: source state element
    base_mode: str = ""  # derived: "inv" | "selfrot"
    base_shift: int = 0  # derived: base's per-trip self-rotation
    expr: _Expr | None = None  # stream: end-of-trip expression


def _classify(ends: list[_Expr]) -> tuple[_RegPlan, ...]:
    """Classify each state element's end-of-trip expression, or reject."""
    prelim: list[_RegPlan] = []
    for q, expr in enumerate(ends):
        if isinstance(expr, _Init):
            if expr.index == q:
                prelim.append(_RegPlan("inv"))
            else:
                prelim.append(_RegPlan("derived", shift=0, base=expr.index))
        elif isinstance(expr, _Rot) and isinstance(expr.src, _Init):
            p = expr.src.index
            if p == q:
                prelim.append(_RegPlan("selfrot", shift=expr.shift))
            else:
                prelim.append(_RegPlan("derived", shift=expr.shift, base=p))
        elif not _has_init(expr):
            prelim.append(_RegPlan("stream", expr=expr))
        else:
            raise UnsupportedTrace(f"recurrence.state{q}")
    plans: list[_RegPlan] = []
    for q, plan in enumerate(prelim):
        if plan.mode != "derived":
            plans.append(plan)
            continue
        base = prelim[plan.base]
        if base.mode == "inv":
            plans.append(replace(plan, base_mode="inv"))
        elif base.mode == "selfrot":
            plans.append(replace(plan, base_mode="selfrot", base_shift=base.shift))
        else:
            raise UnsupportedTrace(f"recurrence.state{q}")
    return tuple(plans)


# ----------------------------------------------------------------------
# NPU issue specs and accumulation plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _LaneSource:
    """One NPU operand: an 8-bit row expression or a 16-bit RAM row pair."""

    kind: str  # "row8" | "ram16" | "zero16"
    expr: _Expr | None = None
    low: _Expr | None = None
    high: _Expr | None = None


@dataclass(frozen=True)
class _NpuSpec:
    """One NPU issue of the trip, fully resolved to lane expressions."""

    opcode: NPUOpcode
    dtype: NcoreDType
    is_float: bool
    accumulate: bool
    data: _LaneSource
    weight: _LaneSource
    zero_offset: bool
    data_shift: int
    from_neighbor: bool
    predicate: int | None


def _spec_class(spec: _NpuSpec) -> str:
    if not spec.accumulate or spec.opcode in (
        NPUOpcode.AND,
        NPUOpcode.OR,
        NPUOpcode.XOR,
    ):
        return "replace"
    if spec.opcode in (NPUOpcode.MIN, NPUOpcode.MAX):
        return "minmax"
    return "sum"


def _npu_plan(specs: Sequence[_NpuSpec]) -> tuple[str, bool] | None:
    """Validate that the trip's NPU issues share one accumulation plan."""
    if not specs:
        return None
    is_float = specs[0].is_float
    if any(spec.is_float != is_float for spec in specs):
        raise UnsupportedTrace("npu.mixed-domain")
    klass = _spec_class(specs[0])
    if any(_spec_class(spec) != klass for spec in specs):
        raise UnsupportedTrace("npu.mixed-class")
    if klass == "minmax" and any(spec.opcode is not specs[0].opcode for spec in specs):
        raise UnsupportedTrace("npu.mixed-minmax")
    if klass == "sum" and is_float and any(spec.predicate is not None for spec in specs):
        # A masked lane keeps its accumulator bit-exactly; adding a zero
        # contribution would turn -0.0 into +0.0.
        raise UnsupportedTrace("npu.float-predicated-sum")
    return klass, is_float


# ----------------------------------------------------------------------
# Trip builder (compile time)
# ----------------------------------------------------------------------


class _TripBuilder:
    """Symbolically executes one trip, issue by issue."""

    def __init__(self, config: "NcoreConfig") -> None:
        self.row_bytes = config.row_bytes
        self.lanes = config.lanes
        self.regs: list[_Expr] = [_Init(i) for i in range(4)]
        self.dlast: _Expr = _Init(_DLAST)
        self.addr_off: list[int] = [0] * NUM_ADDR_REGS
        self.reads = {"data": 0, "weight": 0}
        self.ram_leaves: list[tuple[str, int, int]] = []
        self.npu_specs: list[_NpuSpec] = []
        self.cycles = 0
        self.issues = 0
        self.mac_issues = 0

    def _rot(self, src: _Expr, shift: int) -> _Expr:
        if isinstance(src, _Rot):
            shift += src.shift
            src = src.src
        shift %= self.row_bytes
        if shift == 0:
            return src
        return _Rot(src, shift)

    def _ram_row(self, kind: OperandKind, reg: int, extra: int = 0) -> _RamRow:
        name = "data" if kind is OperandKind.DATA_RAM else "weight"
        leaf = _RamRow(name, reg, self.addr_off[reg] + extra)
        self.reads[name] += 1
        self.ram_leaves.append((name, reg, self.addr_off[reg] + extra))
        return leaf

    def _row_source(
        self,
        operand: Operand,
        regs: list[_Expr],
        dlast_snapshot: _Expr,
        increments: list[tuple[int, int]],
    ) -> _Expr:
        kind = operand.kind
        if kind is OperandKind.DATA_RAM or kind is OperandKind.WEIGHT_RAM:
            if operand.increment:
                increments.append((operand.index, 1))
            return self._ram_row(kind, operand.index)
        if kind is OperandKind.IMMEDIATE:
            return _Const("imm", operand.index)
        if kind is OperandKind.NDU_REG:
            return regs[operand.index]
        if kind is OperandKind.OUT_LOW:
            return _Const("out_low")
        if kind is OperandKind.OUT_HIGH:
            return _Const("out_high")
        if kind is OperandKind.DLAST:
            return dlast_snapshot
        if kind is OperandKind.ZERO:
            return _Const("zero")
        # ACC and anything else: the interpreter raises ExecutionError, so
        # reject and let it do so at the architecturally correct point.
        raise UnsupportedTrace(f"operand.{kind.name}")

    def _lane_source(
        self,
        operand: Operand,
        dtype: NcoreDType,
        dlast_snapshot: _Expr,
        increments: list[tuple[int, int]],
    ) -> _LaneSource:
        info = dtype_info(dtype)
        if info.bytes_per_element == 1:
            # NPU reads NDU registers *post-commit*, dlast pre-issue.
            expr = self._row_source(operand, self.regs, dlast_snapshot, increments)
            return _LaneSource("row8", expr=expr)
        if operand.kind is OperandKind.ZERO:
            return _LaneSource("zero16")
        if operand.kind not in (OperandKind.DATA_RAM, OperandKind.WEIGHT_RAM):
            raise UnsupportedTrace(f"npu16.{operand.kind.name}")
        low = self._ram_row(operand.kind, operand.index)
        high = self._ram_row(operand.kind, operand.index, extra=1)
        if operand.increment:
            increments.append((operand.index, 2))
        return _LaneSource("ram16", low=low, high=high)

    def _add_npu(
        self,
        op: NPUOp,
        dlast_snapshot: _Expr,
        increments: list[tuple[int, int]],
    ) -> None:
        info = dtype_info(op.dtype)
        if op.opcode is NPUOpcode.CMPGT:
            raise UnsupportedTrace("npu.cmpgt")
        if info.is_float and op.zero_offset:
            raise UnsupportedTrace("npu.float-zero-offset")
        if info.is_float and op.opcode in (NPUOpcode.AND, NPUOpcode.OR, NPUOpcode.XOR):
            raise UnsupportedTrace("npu.float-logical")
        if self.lanes != self.row_bytes:
            raise UnsupportedTrace("npu.lane-geometry")
        data = self._lane_source(op.data, op.dtype, dlast_snapshot, increments)
        weight = self._lane_source(op.weight, op.dtype, dlast_snapshot, increments)
        self.npu_specs.append(
            _NpuSpec(
                opcode=op.opcode,
                dtype=op.dtype,
                is_float=info.is_float,
                accumulate=op.accumulate,
                data=data,
                weight=weight,
                zero_offset=op.zero_offset,
                data_shift=op.data_shift,
                from_neighbor=op.from_neighbor,
                predicate=op.predicate,
            )
        )
        if op.opcode is NPUOpcode.MAC:
            self.mac_issues += 1

    def add_issue(self, instruction: Instruction) -> None:
        """Symbolically execute one issue of ``instruction``."""
        self.issues += 1
        if self.issues > _MAX_TRIP_ISSUES:
            raise UnsupportedTrace("trip-too-large")
        self.cycles += instruction.issue_cycles()
        increments: list[tuple[int, int]] = []
        dlast_snapshot = self.dlast
        pre_regs = list(self.regs)
        results: list[tuple[int, _Expr]] = []
        for op in instruction.ndu_ops:
            src = self._row_source(op.src, pre_regs, dlast_snapshot, increments)
            if op.opcode is NDUOpcode.BYPASS:
                expr = src
            elif op.opcode is NDUOpcode.ROTATE:
                shift = -op.amount if op.direction is RotateDirection.LEFT else op.amount
                expr = self._rot(src, shift)
            elif op.opcode is NDUOpcode.BROADCAST64:
                if self.row_bytes % BROADCAST_GROUP:
                    raise UnsupportedTrace("ndu.broadcast-geometry")
                expr = _Bcast(src, op.index_reg, self.addr_off[op.index_reg])
                if op.index_increment:
                    increments.append((op.index_reg, 1))
            else:
                raise UnsupportedTrace(f"ndu.{op.opcode.value}")
            results.append((op.dst, expr))
        for dst, expr in results:
            self.regs[dst] = expr
            if dst == 0:
                self.dlast = expr  # dlast shadows n0
        npu = instruction.npu
        if npu is not None and npu.opcode is not NPUOpcode.NOP:
            self._add_npu(npu, dlast_snapshot, increments)
        for reg, amount in increments:
            self.addr_off[reg] += amount

    def finish(
        self,
        *,
        kind: str,
        trips: int,
        length: int,
        instructions_per_trip: int,
        prologue: int,
    ) -> "FusedTrace":
        plans = _classify([*self.regs, self.dlast])
        plan = _npu_plan(self.npu_specs)
        return FusedTrace(
            kind=kind,
            row_bytes=self.row_bytes,
            lanes=self.lanes,
            trips=trips,
            length=length,
            cycles_per_trip=self.cycles,
            issues_per_trip=self.issues,
            instructions_per_trip=instructions_per_trip,
            prologue_cycles=prologue,
            prologue_issues=prologue,
            prologue_instructions=prologue,
            strides=tuple(self.addr_off),
            reads_data=self.reads["data"],
            reads_weight=self.reads["weight"],
            mac_issues=self.mac_issues,
            ram_leaves=tuple(self.ram_leaves),
            plans=plans,
            npu_specs=tuple(self.npu_specs),
            npu_class=None if plan is None else plan[0],
            npu_float=False if plan is None else plan[1],
        )


# ----------------------------------------------------------------------
# Runtime evaluation
# ----------------------------------------------------------------------


def _rotation_windows(live: Array) -> Array:
    """All rotations of ``live`` as rows of one strided view.

    ``_rotation_windows(live)[o][col] == live[(o + col) % R]``, so the
    rotation ``roll(live, s)`` is row ``(-s) % R`` — selecting rows is a
    plain gather instead of an (nb, R) modular index matrix.
    """
    doubled = np.concatenate((live, live))
    return np.lib.stride_tricks.sliding_window_view(doubled, live.shape[0])


class _Evaluator:
    """Evaluates trip expressions as (nb, row_bytes) matrices for one
    block of ``nb`` consecutive trips, anchored at the machine's current
    (live) state."""

    def __init__(self, trace: "FusedTrace", machine: "Ncore", nb: int) -> None:
        self.trace = trace
        self.m = machine
        self.nb = nb
        self.live_addr = list(machine.addr_regs)
        self.live: list[Array] = [np.asarray(machine.ndu_regs[i]) for i in range(4)]
        self.live.append(machine.dlast)
        self.memo: dict[_Expr, Array] = {}

    def scratch(self, tag: object, shape: tuple[int, ...], dtype: Any) -> Array:
        """A reusable per-machine buffer for this (tag, shape, dtype) slot.

        Fused blocks repeatedly allocate multi-MB temporaries; recycling
        them keeps the pages warm.  Callers must overwrite the buffer fully
        and never publish it into machine state without copying.
        """
        pool = self.m._fastpath_scratch
        key = (tag, shape, np.dtype(dtype).str)
        buf = pool.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            pool[key] = buf
        return buf

    def row_index(self, reg: int, offset: int) -> Array:
        stride = self.trace.strides[reg]
        base = self.live_addr[reg] + offset
        return base + stride * np.arange(self.nb, dtype=np.int64)

    def eval(self, expr: _Expr) -> Array:
        got = self.memo.get(expr)
        if got is not None:
            return got
        out = self._eval(expr)
        self.memo[expr] = out
        return out

    def _eval(self, expr: _Expr) -> Array:
        nb = self.nb
        row_bytes = self.trace.row_bytes
        if isinstance(expr, _Const):
            if expr.kind == "imm":
                row = np.full(row_bytes, expr.value, dtype=np.uint8)
            elif expr.kind == "zero":
                row = np.zeros(row_bytes, dtype=np.uint8)
            elif expr.kind == "out_low":
                row = self.m.out_low
            else:
                row = self.m.out_high
            return np.broadcast_to(row, (nb, row_bytes))
        if isinstance(expr, _RamRow):
            ram = self.m.data_ram if expr.ram == "data" else self.m.weight_ram
            if self.trace.strides[expr.reg] == 0:
                # The same row every trip: a broadcast view, no gather.
                row = ram.data[self.live_addr[expr.reg] + expr.offset]
                return np.broadcast_to(row, (nb, row_bytes))
            rows = self.row_index(expr.reg, expr.offset)
            return ram.data[rows]
        if isinstance(expr, _Rot):
            src = self.eval(expr.src)
            if src.ndim == 2 and src.strides[0] == 0:
                return np.broadcast_to(np.roll(src[0], expr.shift), (nb, row_bytes))
            return np.roll(src, expr.shift, axis=1)
        if isinstance(expr, _Bcast):
            src = self.eval(expr.src)
            idx = self.row_index(expr.reg, expr.offset) % BROADCAST_GROUP
            groups_per_row = row_bytes // BROADCAST_GROUP
            if src.strides[0] == 0:
                g = src[0].reshape(groups_per_row, BROADCAST_GROUP)
                picked = g[:, idx].T
            else:
                groups = src.reshape(nb, groups_per_row, BROADCAST_GROUP)
                picked = groups[
                    np.arange(nb)[:, None],
                    np.arange(groups_per_row)[None, :],
                    idx[:, None],
                ]
            buf = self.scratch(("bcast", expr), (nb, row_bytes), src.dtype)
            buf.reshape(nb, groups_per_row, BROADCAST_GROUP)[:] = picked[:, :, None]
            return buf
        return self._entering(expr.index)

    def _entering(self, q: int) -> Array:
        """Matrix of state element ``q``'s value entering trips 0..nb-1."""
        plan = self.trace.plans[q]
        nb = self.nb
        row_bytes = self.trace.row_bytes
        live = self.live[q]
        if plan.mode == "inv":
            return np.broadcast_to(live, (nb, row_bytes))
        if plan.mode == "selfrot":
            # roll(live, s*t)[col] == live[(col - s*t) % R]: gather whole
            # rotations as rows of a sliding window over a doubled buffer
            # instead of materializing an (nb, R) index matrix.
            offs = (-plan.shift * np.arange(nb, dtype=np.int64)) % row_bytes
            return _rotation_windows(live)[offs]
        if plan.mode == "derived":
            if nb == 1:
                return live[None, :].copy()
            base = self.live[plan.base]
            buf = self.scratch(("ent", q), (nb, row_bytes), live.dtype)
            buf[0] = live
            if plan.base_mode == "inv":
                buf[1:] = np.roll(base, plan.shift)
            else:
                t = np.arange(1, nb, dtype=np.int64)
                offs = (-(plan.shift + plan.base_shift * (t - 1))) % row_bytes
                buf[1:] = _rotation_windows(base)[offs]
            return buf
        assert plan.expr is not None
        if nb == 1:
            return live[None, :].copy()
        vals = self.eval(plan.expr)
        buf = self.scratch(("ent", q), (nb, row_bytes), live.dtype)
        buf[0] = live
        buf[1:] = vals[: nb - 1]
        return buf

    def end_value(self, q: int, n: int) -> Array | None:
        """State element ``q`` after ``n`` full trips (None = unchanged)."""
        plan = self.trace.plans[q]
        live = self.live[q]
        row_bytes = self.trace.row_bytes
        if plan.mode == "inv":
            return None
        if plan.mode == "selfrot":
            return np.roll(live, (plan.shift * n) % row_bytes)
        if plan.mode == "derived":
            base = self.live[plan.base]
            shift = plan.shift
            if plan.base_mode == "selfrot":
                shift += plan.base_shift * (n - 1)
            return np.roll(base, shift % row_bytes)
        assert plan.expr is not None
        return self.eval(plan.expr)[n - 1].copy()


def _lanes(
    ev: _Evaluator, source: _LaneSource, dtype: NcoreDType
) -> tuple[Array, int, bool]:
    """Operand lanes in their *native* width, a static magnitude bound
    and whether the lanes are provably non-negative.

    Keeping int operands narrow (int8/uint8/int16) lets ``_combined`` widen
    once, inside the combining ufunc, instead of materializing int64 copies;
    the bound lets ``_apply_npu`` prove no intermediate clip can fire.
    """
    if source.kind == "zero16":
        if dtype is NcoreDType.BF16:
            return np.zeros((ev.nb, ev.trace.row_bytes), dtype=np.float32), 0, False
        return np.zeros((ev.nb, ev.trace.row_bytes), dtype=np.int16), 0, True
    if source.kind == "row8":
        assert source.expr is not None
        raw = ev.eval(source.expr)
        if dtype is NcoreDType.INT8:
            return raw.view(np.int8), 128, False
        return raw, 255, True
    assert source.low is not None and source.high is not None
    low = ev.eval(source.low)
    high = ev.eval(source.high)
    bits = low.astype(np.uint16) | (high.astype(np.uint16) << np.uint16(8))
    if dtype is NcoreDType.INT16:
        return bits.view(np.int16), 32768, False
    return (bits.astype(np.uint32) << np.uint32(16)).view(np.float32).copy(), 0, False


def _combined(
    ev: _Evaluator, spec: _NpuSpec, issue: int
) -> tuple[Array, Array | None, int]:
    """One NPU issue's per-trip combined values, predicate mask and a
    static magnitude bound on any combined value.

    Integer math widens only as far as the bound requires (int32 when the
    combine provably fits, int64 otherwise) — values are exact integers in
    either width, mirroring ``_combine_int``'s int64 semantics.  Float
    results stay float32.
    """
    machine = ev.m
    data, dbound, dnonneg = _lanes(ev, spec.data, spec.dtype)
    weight, wbound, wnonneg = _lanes(ev, spec.weight, spec.dtype)
    op = spec.opcode
    if spec.is_float:
        if spec.data_shift:
            data = data * np.float32(2.0 ** -spec.data_shift)
        if spec.from_neighbor:
            data = np.roll(data, SLICE_LANES, axis=1)
        if op is NPUOpcode.MAC:
            comb = data * weight
        elif op is NPUOpcode.ADD:
            comb = data + weight
        elif op is NPUOpcode.SUB:
            comb = data - weight
        elif op is NPUOpcode.MIN:
            comb = np.minimum(data, weight)
        else:
            comb = np.maximum(data, weight)
        mask = None if spec.predicate is None else machine.pred_regs[spec.predicate]
        return comb, mask, 0
    if spec.zero_offset:
        dbound += abs(int(machine.data_zero_offset))
        wbound += abs(int(machine.weight_zero_offset))
        dnonneg = wnonneg = False
    if op is NPUOpcode.MAC:
        bound = dbound * wbound
        nonneg = dnonneg and wnonneg
    elif op is NPUOpcode.ADD:
        bound = dbound + wbound
        nonneg = dnonneg and wnonneg
    elif op is NPUOpcode.SUB:
        bound = dbound + wbound
        nonneg = False
    else:
        bound = max(dbound, wbound)
        nonneg = dnonneg and wnonneg
    # The narrowest dtype that holds every combined value exactly: SIMD
    # throughput on this path scales with element width.  The uint16 tier
    # additionally needs unsigned *inputs* — a signed operand array (e.g.
    # the int16 zero16 source) cannot cast to uint16 under numpy's
    # same-kind rule even when its values are provably non-negative.
    cdtype: type
    if (
        nonneg
        and bound <= 65535
        and data.dtype.kind == "u"
        and weight.dtype.kind == "u"
    ):
        cdtype = np.uint16
    elif bound <= 32767:
        cdtype = np.int16
    elif bound <= ACC_MAX:
        cdtype = np.int32
    else:
        cdtype = np.int64
    if spec.zero_offset:
        # subtract() with an explicit dtype casts the operands first, so
        # the narrow lanes widen exactly once.
        data = np.subtract(data, machine.data_zero_offset, dtype=cdtype)
        weight = np.subtract(weight, machine.weight_zero_offset, dtype=cdtype)
    if spec.data_shift:
        data = data >> spec.data_shift
    if spec.from_neighbor:
        data = np.roll(data, SLICE_LANES, axis=1)
    out = ev.scratch(("comb", issue), (ev.nb, ev.trace.row_bytes), cdtype)
    if op is NPUOpcode.MAC:
        comb = np.multiply(data, weight, dtype=cdtype, out=out)
    elif op is NPUOpcode.ADD:
        comb = np.add(data, weight, dtype=cdtype, out=out)
    elif op is NPUOpcode.SUB:
        comb = np.subtract(data, weight, dtype=cdtype, out=out)
    elif op is NPUOpcode.MIN:
        comb = np.minimum(data, weight, dtype=cdtype, out=out)
    elif op is NPUOpcode.MAX:
        comb = np.maximum(data, weight, dtype=cdtype, out=out)
    elif op is NPUOpcode.AND:
        comb = np.bitwise_and(data, weight, dtype=cdtype, out=out)
    elif op is NPUOpcode.OR:
        comb = np.bitwise_or(data, weight, dtype=cdtype, out=out)
    else:
        comb = np.bitwise_xor(data, weight, dtype=cdtype, out=out)
    mask = None if spec.predicate is None else machine.pred_regs[spec.predicate]
    return comb, mask, bound


def _apply_npu(ev: _Evaluator, trace: "FusedTrace", nb: int) -> tuple[int, Array | None]:
    """Fold the block's NPU issues into the accumulator.

    Returns ``(n_ok, new_acc)``: the number of trips whose accumulation is
    proven bit-exact (saturation inside the block truncates it) and the
    accumulator after those trips (None when the trip has no NPU work).
    """
    if trace.npu_class is None:
        return nb, None
    machine = ev.m
    specs = trace.npu_specs
    issues = len(specs)
    pairs = [_combined(ev, spec, issue) for issue, spec in enumerate(specs)]
    if trace.npu_class == "sum":
        if trace.npu_float:
            flat = np.stack([comb for comb, _, _ in pairs], axis=1).reshape(
                nb * issues, -1
            )
            stacked = np.vstack([machine.acc_float[None, :], flat])
            acc = np.add.accumulate(stacked, axis=0, dtype=np.float32)[-1]
            return nb, acc.astype(np.float32)
        # Fast path: when |acc| plus the worst-case drift over the whole
        # block provably stays inside int32, no intermediate clip can fire
        # (clip is the identity on in-range accumulators), so plain sums —
        # order-free exact integer addition — replace the prefix scan.
        acc0 = machine.acc_int
        per_trip = sum(bound for _, _, bound in pairs)
        worst = int(np.abs(acc0.astype(np.int64)).max()) + nb * per_trip
        if worst <= ACC_MAX:
            total = np.zeros(acc0.shape[0], dtype=np.int64)
            for comb, mask, bound in pairs:
                # A 32-bit accumulator is exact while nb*bound fits in it.
                sdtype = np.int32 if nb * bound <= ACC_MAX else np.int64
                part = comb.sum(axis=0, dtype=sdtype)
                if mask is not None:
                    # A masked lane's acc is unchanged: zero its whole sum.
                    part = np.where(mask, part, part.dtype.type(0))
                total += part
            return nb, (acc0.astype(np.int64) + total).astype(np.int32)
        conts = []
        for comb, mask, _ in pairs:
            if mask is not None:
                # Exact: a masked lane's acc is unchanged and clip() is the
                # identity on in-range int32 accumulators.
                comb = np.where(mask[None, :], comb, np.int64(0))
            conts.append(comb.astype(np.int64, copy=False))
        flat = np.stack(conts, axis=1).reshape(nb * issues, -1)
        prefix = machine.acc_int.astype(np.int64)[None, :] + np.cumsum(
            flat, axis=0, dtype=np.int64
        )
        bad = ((prefix < ACC_MIN) | (prefix > ACC_MAX)).any(axis=1)
        if bad.any():
            first_bad = int(np.argmax(bad))
            n_ok = first_bad // issues
            if n_ok == 0:
                return 0, None
            return n_ok, prefix[n_ok * issues - 1].astype(np.int32)
        return nb, prefix[-1].astype(np.int32)
    if trace.npu_class == "minmax":
        is_min = specs[0].opcode is NPUOpcode.MIN
        if trace.npu_float:
            sentinel_f = np.float32(np.inf if is_min else -np.inf)
            conts_f = [
                comb if mask is None else np.where(mask[None, :], comb, sentinel_f)
                for comb, mask, _ in pairs
            ]
            flat = np.stack(conts_f, axis=1).reshape(nb * issues, -1)
            stacked = np.vstack([machine.acc_float[None, :], flat])
            ufunc = np.minimum if is_min else np.maximum
            return nb, ufunc.reduce(stacked, axis=0).astype(np.float32)
        # Integer min/max is fully associative and commutative, so each
        # issue's trips reduce independently before folding into the acc.
        info = np.iinfo(np.int64)
        sentinel = np.int64(info.max if is_min else info.min)
        ufunc = np.minimum if is_min else np.maximum
        acc64 = machine.acc_int.astype(np.int64)
        for comb, mask, _ in pairs:
            red = ufunc.reduce(comb, axis=0).astype(np.int64)
            if mask is not None:
                red = np.where(mask, red, sentinel)
            acc64 = ufunc(acc64, red)
        return nb, acc64.astype(np.int32)
    # replace: only the final trip's values (per-lane last write) survive.
    if trace.npu_float:
        final_f: Array = machine.acc_float.copy()
        for comb, mask, _ in pairs:
            value = comb[nb - 1].astype(np.float32)
            final_f = (
                value if mask is None
                else np.where(mask, value, final_f).astype(np.float32)
            )
        return nb, final_f
    final: Array = machine.acc_int.copy()
    for comb, mask, _ in pairs:
        value_i = np.clip(comb[nb - 1], ACC_MIN, ACC_MAX).astype(np.int32)
        final = value_i if mask is None else np.where(mask, value_i, final)
    return nb, final


def _bulk_add(counter: "PerfCounter", amount: int) -> None:
    """Apply many increments at once, reproducing wraparound semantics."""
    if amount <= 0:
        return
    before = counter.value
    modulus = 1 << counter.bits
    counter.value = (before + amount) % modulus
    if before + amount >= modulus:
        counter.wrapped = True


# ----------------------------------------------------------------------
# The compiled trace
# ----------------------------------------------------------------------


@dataclass
class FusedTrace:
    """One compiled loop: either a ``repeat`` trace (all iterations of a
    single hardware-repeated instruction) or a ``region`` trace (a whole
    ``LOOP_BEGIN``…``LOOP_END`` body, prologue included)."""

    kind: str  # "repeat" | "region"
    row_bytes: int
    lanes: int
    trips: int  # region: total trip count; repeat: 0 (count from repeat)
    length: int  # region: instructions spanned (incl. begin/end)
    cycles_per_trip: int
    issues_per_trip: int
    instructions_per_trip: int
    prologue_cycles: int
    prologue_issues: int
    prologue_instructions: int
    strides: tuple[int, ...]
    reads_data: int
    reads_weight: int
    mac_issues: int
    ram_leaves: tuple[tuple[str, int, int], ...]
    plans: tuple[_RegPlan, ...]
    npu_specs: tuple[_NpuSpec, ...]
    npu_class: str | None
    npu_float: bool

    def preflight(self, machine: "Ncore", count: int) -> str | None:
        """Why ``count`` trips cannot be fused from the current state
        (None = safe).  Every check mirrors a condition under which the
        interpreter would deviate from the static model: pending ECC
        corrections, RAM bounds faults, perf-counter wraparound
        breakpoints and n-step windows landing inside the trace."""
        if count <= 0:
            return "empty"
        if self.reads_data and machine.data_ram._injected:
            return "ecc"
        if self.reads_weight and machine.weight_ram._injected:
            return "ecc"
        for name, reg, offset in self.ram_leaves:
            ram: "RowMemory" = machine.data_ram if name == "data" else machine.weight_ram
            first = machine.addr_regs[reg] + offset
            last = first + self.strides[reg] * (count - 1)
            if min(first, last) < 0 or max(first, last) >= ram.rows:
                return "bounds"
        cycles = self.prologue_cycles + self.cycles_per_trip * count
        deltas = (
            ("cycles", cycles),
            (
                "instructions",
                self.prologue_instructions + self.instructions_per_trip * count,
            ),
            ("macs", self.lanes * self.mac_issues * count),
        )
        for name, delta in deltas:
            counter = machine.perf_counters[name]
            if counter.break_on_wrap and counter.value + delta >= (1 << counter.bits):
                return "perf_counter"
        if machine.n_step is not None:
            next_break = machine._next_step_break
            if next_break is None or machine.total_cycles + cycles >= next_break:
                return "n_step"
        return None

    def run(self, machine: "Ncore", count: int) -> int:
        """Execute up to ``count`` fused trips; returns trips committed.

        Region traces commit their ``LOOP_BEGIN`` prologue counters first
        (the caller manages pc and the loop stack).  A partial return means
        accumulator saturation was detected — the machine state is exactly
        the interpreter's at that trip boundary, and the interpreter picks
        up the saturating iteration.
        """
        if self.prologue_cycles:
            self._commit_counters(machine, 0, prologue=True)
        block_issues = max(1, _BLOCK_TARGET_BYTES // max(1, self.row_bytes))
        per_block = max(1, block_issues // max(1, self.issues_per_trip))
        done = 0
        while done < count:
            nb = min(per_block, count - done)
            ok = self._run_block(machine, nb)
            done += ok
            if ok < nb:
                break
        return done

    def _run_block(self, machine: "Ncore", nb: int) -> int:
        ev = _Evaluator(self, machine, nb)
        n_ok, acc = _apply_npu(ev, self, nb)
        if n_ok == 0:
            return 0
        ends: list[tuple[int, Array]] = []
        for q in range(5):
            value = ev.end_value(q, n_ok)
            if value is not None:
                ends.append((q, value))
        for q, value in ends:
            if q == _DLAST:
                machine.dlast = value.astype(np.uint8, copy=False).copy()
            else:
                machine.ndu_regs[q] = value
        if acc is not None:
            if self.npu_float:
                machine.acc_float = acc
            else:
                machine.acc_int = acc
        for reg in range(NUM_ADDR_REGS):
            stride = self.strides[reg]
            if stride:
                machine.addr_regs[reg] += stride * n_ok
        self._commit_counters(machine, n_ok, prologue=False)
        return n_ok

    def _commit_counters(self, machine: "Ncore", trips: int, *, prologue: bool) -> None:
        if prologue:
            cycles, issues, instructions, macs = 1, 1, 1, 0
            reads_d = reads_w = 0
        else:
            cycles = self.cycles_per_trip * trips
            issues = self.issues_per_trip * trips
            instructions = self.instructions_per_trip * trips
            macs = self.lanes * self.mac_issues * trips
            reads_d = self.reads_data * trips
            reads_w = self.reads_weight * trips
        machine.total_cycles += cycles
        machine.total_issues += issues
        machine.total_instructions += instructions
        machine.total_macs += macs
        machine.data_ram.reads += reads_d
        machine.weight_ram.reads += reads_w
        _bulk_add(machine.perf_counters["cycles"], cycles)
        _bulk_add(machine.perf_counters["instructions"], instructions)
        _bulk_add(machine.perf_counters["macs"], macs)


# ----------------------------------------------------------------------
# Program compilation
# ----------------------------------------------------------------------


def _pure_seq(instruction: Instruction) -> bool:
    return (
        not instruction.ndu_ops
        and (instruction.npu is None or instruction.npu.opcode is NPUOpcode.NOP)
        and (instruction.out is None or instruction.out.opcode is OutOpcode.NOP)
        and instruction.repeat == 1
    )


def compile_repeat(instruction: Instruction, config: "NcoreConfig") -> FusedTrace:
    """Compile a ``repeat > 1`` instruction into a fused trace."""
    blockers = instruction.fusion_blockers()
    if blockers:
        raise UnsupportedTrace(";".join(blockers))
    builder = _TripBuilder(config)
    builder.add_issue(instruction)
    return builder.finish(
        kind="repeat", trips=0, length=1, instructions_per_trip=0, prologue=0
    )


def compile_region(
    program: Sequence[Instruction], pc: int, config: "NcoreConfig"
) -> FusedTrace:
    """Compile the ``LOOP_BEGIN`` at ``pc`` and its body into a trace."""
    begin = program[pc]
    if not _pure_seq(begin):
        raise UnsupportedTrace("region.begin-units")
    trips = begin.seq.arg2
    if trips < 2:
        raise UnsupportedTrace("region.trips")
    end: int | None = None
    for j in range(pc + 1, len(program)):
        opcode = program[j].seq.opcode
        if opcode is SeqOpcode.LOOP_BEGIN:
            raise UnsupportedTrace("region.nested")
        if opcode is SeqOpcode.LOOP_END:
            end = j
            break
    if end is None or end == pc + 1:
        raise UnsupportedTrace("region.body")
    if not _pure_seq(program[end]):
        raise UnsupportedTrace("region.end-units")
    builder = _TripBuilder(config)
    for instruction in program[pc + 1 : end]:
        if instruction.repeat > 1 and instruction.seq.opcode is not SeqOpcode.NOP:
            raise UnsupportedTrace("region.repeat-seq")  # interpreter raises
        blockers = instruction.fusion_blockers()
        if blockers:
            raise UnsupportedTrace(";".join(blockers))
        for _ in range(instruction.repeat):
            builder.add_issue(instruction)
        seq = instruction.seq
        if seq.opcode is SeqOpcode.ADD_ADDR:
            builder.addr_off[seq.arg] += seq.arg2
    builder.cycles += 1  # the LOOP_END issue
    builder.issues += 1
    return builder.finish(
        kind="region",
        trips=trips,
        length=end - pc + 1,
        instructions_per_trip=end - pc,  # body instructions + LOOP_END
        prologue=1,
    )


def compile_program(
    program: Sequence[Instruction],
    config: "NcoreConfig",
    stats: dict[str, int] | None = None,
) -> dict[int, FusedTrace]:
    """Compile every fusible loop of a program; keyed by pc.

    ``repeat`` traces are keyed at the repeated instruction, ``region``
    traces at their ``LOOP_BEGIN`` — both can coexist, so a region that
    falls back at runtime still fuses its repeated body instructions.
    """
    table: dict[int, FusedTrace] = {}
    compiled = 0
    rejected = 0
    for pc, instruction in enumerate(program):
        if instruction.repeat > 1:
            try:
                table[pc] = compile_repeat(instruction, config)
                compiled += 1
            except UnsupportedTrace:
                rejected += 1
        elif instruction.seq.opcode is SeqOpcode.LOOP_BEGIN:
            try:
                table[pc] = compile_region(program, pc, config)
                compiled += 1
            except UnsupportedTrace:
                rejected += 1
    if stats is not None:
        note_stat(stats, "compiled", compiled)
        note_stat(stats, "rejected", rejected)
    return table


__all__ = [
    "FusedTrace",
    "UnsupportedTrace",
    "compile_program",
    "compile_region",
    "compile_repeat",
    "get_fastpath_default",
    "note_stat",
    "set_fastpath_default",
]
