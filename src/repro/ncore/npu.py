"""The Neural Processing Unit (NPU): the 4096-lane arithmetic array.

Section IV-D.4: MACs, additions, subtractions, min/max, logical operations;
optional conversion of unsigned 8-bit values to signed 9-bit by subtracting
a zero offset (separate offsets for data and weights); a 32-bit saturating
accumulator conditionally set via predication; data forwarding to the
adjacent slice's NPU with wraparound ("slide").

These are pure functions over integer lane arrays; bf16 lanes use a
float32 accumulator (hardware floating-point MACs keep a wide accumulator,
modelled here as IEEE float32).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import ACC_MAX, ACC_MIN
from repro.isa.instruction import NPUOp, NPUOpcode
from repro.ncore.errors import ExecutionError

SLICE_LANES = 256  # lanes per slice; the granularity of neighbour forwarding


def slide_from_neighbor(lanes: np.ndarray) -> np.ndarray:
    """Forward each slice's data to the next slice, wrapping last -> first.

    Lane *l* receives the value lane *l - 256* held, so data "slides"
    across all 4,096 byte-wise execution elements over successive cycles.
    """
    return np.roll(lanes, SLICE_LANES)


def _combine_int(opcode: NPUOpcode, data: np.ndarray, weight: np.ndarray) -> np.ndarray:
    data = data.astype(np.int64)
    weight = weight.astype(np.int64)
    if opcode is NPUOpcode.MAC:
        return data * weight
    if opcode is NPUOpcode.ADD:
        return data + weight
    if opcode is NPUOpcode.SUB:
        return data - weight
    if opcode is NPUOpcode.MIN:
        return np.minimum(data, weight)
    if opcode is NPUOpcode.MAX:
        return np.maximum(data, weight)
    if opcode is NPUOpcode.AND:
        return data & weight
    if opcode is NPUOpcode.OR:
        return data | weight
    if opcode is NPUOpcode.XOR:
        return data ^ weight
    raise ValueError(f"not an integer ALU opcode: {opcode}")


def execute_int(
    op: NPUOp,
    data: np.ndarray,
    weight: np.ndarray,
    acc: np.ndarray,
    predicate_mask: np.ndarray | None,
) -> np.ndarray:
    """One integer NPU operation; returns the new accumulator.

    ``data``/``weight`` are already sign-interpreted int32 lane arrays with
    zero offsets and the data pre-shift applied.  MIN/MAX accumulate by
    folding against the accumulator (the pooling idiom); arithmetic ops
    accumulate by saturating addition; logical ops replace.
    """
    combined = _combine_int(op.opcode, data, weight)
    if not op.accumulate or op.opcode in (NPUOpcode.AND, NPUOpcode.OR, NPUOpcode.XOR):
        new_acc = np.clip(combined, ACC_MIN, ACC_MAX)
    elif op.opcode is NPUOpcode.MIN:
        new_acc = np.minimum(acc.astype(np.int64), combined)
    elif op.opcode is NPUOpcode.MAX:
        new_acc = np.maximum(acc.astype(np.int64), combined)
    else:
        new_acc = np.clip(acc.astype(np.int64) + combined, ACC_MIN, ACC_MAX)
    new_acc = new_acc.astype(np.int32)
    if predicate_mask is not None:
        new_acc = np.where(predicate_mask, new_acc, acc)
    return new_acc


def execute_float(
    op: NPUOp,
    data: np.ndarray,
    weight: np.ndarray,
    acc: np.ndarray,
    predicate_mask: np.ndarray | None,
) -> np.ndarray:
    """One bfloat16 NPU operation on the float32 accumulator."""
    if op.opcode is NPUOpcode.MAC:
        combined = data * weight
    elif op.opcode is NPUOpcode.ADD:
        combined = data + weight
    elif op.opcode is NPUOpcode.SUB:
        combined = data - weight
    elif op.opcode is NPUOpcode.MIN:
        combined = np.minimum(data, weight)
    elif op.opcode is NPUOpcode.MAX:
        combined = np.maximum(data, weight)
    else:
        raise ExecutionError(f"opcode {op.opcode} is not defined for bf16 lanes")
    if not op.accumulate:
        new_acc = combined.astype(np.float32)
    elif op.opcode is NPUOpcode.MIN:
        new_acc = np.minimum(acc, combined).astype(np.float32)
    elif op.opcode is NPUOpcode.MAX:
        new_acc = np.maximum(acc, combined).astype(np.float32)
    else:
        new_acc = (acc + combined).astype(np.float32)
    if predicate_mask is not None:
        new_acc = np.where(predicate_mask, new_acc, acc).astype(np.float32)
    return new_acc


def compare_gt(data: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """CMPGT: compute the per-lane predicate ``data > weight``."""
    return data > weight
