"""The Ncore machine: instruction sequencer and execution pipeline.

Ties together the SRAMs, the NDU / NPU / OUT units, the DMA engines and
the debug facilities into one executable coprocessor model.  The paper's
own design methodology used exactly such an instruction simulator as the
golden model for hardware verification (section V-E); this module is that
simulator rebuilt from the paper's description.

Execution semantics of one instruction issue (one clock for 8-bit work):

1. ``dlast`` is snapshotted — the NPU's DLAST operand reads the value the
   latch held *entering* the cycle, which is why Fig. 6's inner loop can
   MAC the pre-rotation row while the NDU rotates it for the next
   iteration.
2. All NDU ops read their sources from pre-instruction state and commit to
   distinct NDU registers; a write to NDU register n0 re-arms ``dlast``
   with the new value (``dlast`` shadows n0).
3. The NPU reads its operands (NDU registers observe the *new* values —
   the pipeline flows NDU -> NPU within a cycle) and updates the
   accumulators under optional predication.
4. The OUT unit requantizes the post-NPU accumulator and/or stores.
5. Post-increments on address registers are applied, so a hardware-repeated
   instruction streams through rows one iteration per clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import NcoreDType, dtype_info
from repro.isa import Instruction
from repro.isa.instruction import (
    NDUOp,
    NDUOpcode,
    NPUOp,
    NPUOpcode,
    OutOp,
    OutOpcode,
    SeqOp,
    SeqOpcode,
)
from repro.isa.operands import (
    NUM_ADDR_REGS,
    NUM_DMA_DESCRIPTORS,
    NUM_LOOP_COUNTERS,
    NUM_NDU_REGS,
    NUM_PRED_REGS,
    Operand,
    OperandKind,
)
from repro.ncore import fastpath as fastpath_mod
from repro.ncore import ndu as ndu_unit
from repro.ncore import npu as npu_unit
from repro.ncore import out as out_unit
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.ncore.config import NcoreConfig
from repro.ncore.debug import EventLog, PerfCounter
from repro.ncore.dma import DmaDescriptor, DmaEngine, LinearMemory
from repro.ncore.sram import InstructionRam, RowMemory


from repro.ncore.errors import ExecutionError


@dataclass
class MachineRunResult:
    """Outcome of one :meth:`Ncore.step` / :meth:`Ncore.run` call.

    All counts are deltas for the call, not machine lifetime totals, so
    an engine stepping the machine in slices can aggregate them.
    """

    cycles: int
    instructions: int
    issues: int
    halted: bool
    stop_reason: str
    macs: int = 0
    dma_stall_cycles: int = 0


@dataclass
class _LoopFrame:
    body_start: int
    remaining: int


class Ncore:
    """One Ncore coprocessor instance."""

    def __init__(
        self,
        config: NcoreConfig | None = None,
        memory: LinearMemory | None = None,
        fastpath: bool | None = None,
        sanitize=None,
    ) -> None:
        self.config = config or NcoreConfig()
        # Shadow-SRAM sanitizer (repro.sanitize): None/False keeps every
        # hook site at one `is not None` check — the zero-cost default.
        self._san = None
        # Tier-1 fast path (repro.ncore.fastpath): None defers to the
        # process-wide default; False forces pure interpretation.
        self.fastpath = (
            fastpath_mod.get_fastpath_default() if fastpath is None else bool(fastpath)
        )
        # One fused-trace table per IRAM bank, rebuilt on load_program.
        self._fastpath_tables: list[dict[int, fastpath_mod.FusedTrace]] = [{}, {}]
        self.fastpath_stats: dict[str, int] = {
            "compiled": 0,
            "rejected": 0,
            "hits": 0,
            "misses": 0,
            "fallbacks": 0,
            "fused_trips": 0,
        }
        # Recycled block temporaries (see _Evaluator.scratch); purely an
        # allocation cache, never part of architectural state.
        self._fastpath_scratch: dict[object, np.ndarray] = {}
        cfg = self.config
        self.data_ram = RowMemory(cfg.sram_rows, cfg.row_bytes, "data_ram")
        self.weight_ram = RowMemory(cfg.sram_rows, cfg.row_bytes, "weight_ram")
        self.iram = InstructionRam(cfg.iram_instructions, cfg.irom_instructions)
        self.memory = memory if memory is not None else LinearMemory(8 << 30)
        self.dma_read = DmaEngine("dma_read", self.memory, cfg.dma_window_bytes)
        self.dma_write = DmaEngine("dma_write", self.memory, cfg.dma_window_bytes)
        self.dma_descriptors: list[DmaDescriptor | None] = [None] * NUM_DMA_DESCRIPTORS
        self.event_log = EventLog(cfg.event_log_entries)
        self.perf_counters = {
            name: PerfCounter(name) for name in ("cycles", "instructions", "macs", "dma_stall")
        }
        self.n_step: int | None = None
        if sanitize:
            self.arm_sanitizer(sanitize)
        self.reset()

    # ------------------------------------------------------------------
    # Sanitizer (repro.sanitize)
    # ------------------------------------------------------------------

    @property
    def sanitizer(self):
        """The armed :class:`repro.sanitize.Sanitizer`, or ``None``."""
        return self._san

    def arm_sanitizer(self, sanitize=True):
        """Arm (or disarm) the shadow-SRAM sanitizer on this machine.

        ``sanitize`` may be ``True`` / ``"shadow"`` (fresh
        :class:`~repro.sanitize.Sanitizer`), an existing instance, or
        ``False`` / ``None`` to disarm.  Arming forces pure
        interpretation: the fast path batches whole loop regions, so the
        sanitizer would miss the per-issue accesses it must observe.
        Returns the armed sanitizer (or ``None`` after disarming).
        """
        if not sanitize:
            self._san = None
            self.dma_read.sanitizer = None
            self.dma_write.sanitizer = None
            return None
        from repro.sanitize.sanitizer import Sanitizer

        self._san = (
            sanitize if isinstance(sanitize, Sanitizer)
            else Sanitizer(self.config)
        )
        self.fastpath = False
        self._fastpath_tables = [{}, {}]
        self.dma_read.sanitizer = self._san
        self.dma_write.sanitizer = self._san
        return self._san

    # ------------------------------------------------------------------
    # State and the memory-mapped slave interface
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Power-on reset: clear all architectural and debug state."""
        cfg = self.config
        lanes = cfg.lanes
        self.addr_regs = [0] * NUM_ADDR_REGS
        self.ndu_regs = np.zeros((NUM_NDU_REGS, cfg.row_bytes), dtype=np.uint8)
        self.dlast = np.zeros(cfg.row_bytes, dtype=np.uint8)
        self.acc_int = np.zeros(lanes, dtype=np.int32)
        self.acc_float = np.zeros(lanes, dtype=np.float32)
        self.out_low = np.zeros(cfg.row_bytes, dtype=np.uint8)
        self.out_high = np.zeros(cfg.row_bytes, dtype=np.uint8)
        self.pred_regs = np.ones((NUM_PRED_REGS, lanes), dtype=bool)
        # Configuration registers (written via the slave interface).
        self.data_zero_offset = 0
        self.weight_zero_offset = 0
        self.requant_multiplier = np.full(lanes, 1 << 30, dtype=np.int64)
        self.requant_shift = np.full(lanes, -1, dtype=np.int64)  # identity
        self.requant_offset = np.zeros(lanes, dtype=np.int64)
        self.float_scale = 1.0
        self.act_lut: np.ndarray | None = None
        self.act_qmax = 255
        # Sequencer state.
        self.pc = 0
        self.loop_stack: list[_LoopFrame] = []
        self.halted = False
        self.running = False
        # Statistics.
        self.total_cycles = 0
        self.total_instructions = 0
        self.total_issues = 0
        self.total_macs = 0
        self.dma_stall_cycles = 0
        self._next_step_break: int | None = None
        self._resume_repeat: tuple[int, int] | None = None
        self._pending_break: str | None = None
        # The cycle counter restarted, so in-flight DMA timing is stale.
        self.dma_read.reset_timing()
        self.dma_write.reset_timing()
        if self._san is not None:
            self._san.on_reset()

    def set_zero_offsets(self, data: int, weight: int) -> None:
        """Configure the u8 -> s9 zero offsets (section IV-D.4)."""
        self.data_zero_offset = int(data)
        self.weight_zero_offset = int(weight)

    def set_requant(self, multiplier, shift, offset) -> None:
        """Configure per-lane requantization range/scale/offset registers.

        Scalars are broadcast across all lanes; arrays must have one entry
        per lane (per-output-channel parameters are laid out by the NKL).
        """
        lanes = self.config.lanes
        self.requant_multiplier = np.broadcast_to(
            np.asarray(multiplier, dtype=np.int64), (lanes,)
        ).copy()
        self.requant_shift = np.broadcast_to(np.asarray(shift, dtype=np.int64), (lanes,)).copy()
        self.requant_offset = np.broadcast_to(np.asarray(offset, dtype=np.int64), (lanes,)).copy()

    def set_float_scale(self, scale: float) -> None:
        """Configure the bf16 output scaling factor."""
        self.float_scale = float(scale)

    def set_activation_lut(self, lut: np.ndarray) -> None:
        """Load the 256-entry tanh/sigmoid lookup table."""
        lut = np.asarray(lut)
        if lut.shape != (256,):
            raise ValueError("activation LUT must have 256 entries")
        self.act_lut = lut.astype(np.int32)

    def set_act_qmax(self, qmax: int) -> None:
        """Configure the upper clamp code used by ReLU6."""
        self.act_qmax = int(qmax)

    def set_addr_reg(self, index: int, value: int) -> None:
        if not 0 <= index < NUM_ADDR_REGS:
            raise ValueError(f"address register {index} out of range")
        self.addr_regs[index] = int(value)

    def set_dma_descriptor(self, index: int, descriptor: DmaDescriptor) -> None:
        if not 0 <= index < NUM_DMA_DESCRIPTORS:
            raise ValueError(f"DMA descriptor {index} out of range")
        self.dma_descriptors[index] = descriptor

    def load_program(self, program: list[Instruction], swap: bool = True) -> None:
        """Load a program into the inactive IRAM bank and optionally swap.

        Mirrors the double-buffered loading flow: any x86 core can fill the
        inactive bank during execution, then the sequencer flips banks.
        """
        inactive = self.iram.active_bank ^ 1
        self.iram.load_bank(inactive, program, running=self.running)
        self._fastpath_tables[inactive] = (
            fastpath_mod.compile_program(program, self.config, self.fastpath_stats)
            if self.fastpath
            else {}
        )
        if swap:
            self.iram.swap()
            self.pc = 0
            self.halted = False

    # ------------------------------------------------------------------
    # Operand resolution
    # ------------------------------------------------------------------

    def _raw_row(
        self,
        operand: Operand,
        ndu_view: np.ndarray,
        dlast_snapshot: np.ndarray,
        increments: list[tuple[int, int]],
    ) -> np.ndarray:
        """Fetch one raw 4096-byte row for an NDU source."""
        kind = operand.kind
        if kind is OperandKind.DATA_RAM or kind is OperandKind.WEIGHT_RAM:
            ram = self.data_ram if kind is OperandKind.DATA_RAM else self.weight_ram
            row = self.addr_regs[operand.index]
            if operand.increment:
                increments.append((operand.index, 1))
            if self._san is not None:
                self._san.on_row_read(
                    "data" if kind is OperandKind.DATA_RAM else "weight",
                    row, 1, self.total_cycles, self.pc,
                )
            return ram.read_row(row)
        if kind is OperandKind.IMMEDIATE:
            return np.full(self.config.row_bytes, operand.index, dtype=np.uint8)
        if kind is OperandKind.NDU_REG:
            return ndu_view[operand.index].copy()
        if kind is OperandKind.OUT_LOW:
            return self.out_low.copy()
        if kind is OperandKind.OUT_HIGH:
            return self.out_high.copy()
        if kind is OperandKind.DLAST:
            return dlast_snapshot.copy()
        if kind is OperandKind.ZERO:
            return np.zeros(self.config.row_bytes, dtype=np.uint8)
        raise ExecutionError(f"operand kind {kind.name} is not a row source")

    def _npu_lanes(
        self,
        operand: Operand,
        dtype: NcoreDType,
        dlast_snapshot: np.ndarray,
        increments: list[tuple[int, int]],
    ) -> np.ndarray:
        """Fetch and interpret one NPU operand as lane values."""
        info = dtype_info(dtype)
        if info.bytes_per_element == 1:
            raw = self._raw_row(operand, self.ndu_regs, dlast_snapshot, increments)
            if dtype is NcoreDType.INT8:
                return raw.view(np.int8).astype(np.int32)
            return raw.astype(np.int32)
        # 16-bit operands span two RAM rows: low bytes then high bytes
        # (section IV-C.2).  Register sources hold single rows and cannot
        # supply 16-bit operands.
        if operand.kind is OperandKind.ZERO:
            zeros = np.zeros(self.config.lanes, dtype=np.int32)
            return zeros.astype(np.float32) if info.is_float else zeros
        if operand.kind not in (OperandKind.DATA_RAM, OperandKind.WEIGHT_RAM):
            raise ExecutionError(
                f"16-bit NPU operands must come from RAM, not {operand.kind.name}"
            )
        ram = self.data_ram if operand.kind is OperandKind.DATA_RAM else self.weight_ram
        row = self.addr_regs[operand.index]
        if self._san is not None:
            self._san.on_row_read(
                "data" if operand.kind is OperandKind.DATA_RAM else "weight",
                row, 2, self.total_cycles, self.pc,
            )
        low = ram.read_row(row)
        high = ram.read_row(row + 1)
        if operand.increment:
            increments.append((operand.index, 2))
        bits = low.astype(np.uint16) | (high.astype(np.uint16) << np.uint16(8))
        if dtype is NcoreDType.INT16:
            return bits.view(np.int16).astype(np.int32)
        # bf16: expand the 16-bit encoding to float32 lanes.
        return (bits.astype(np.uint32) << np.uint32(16)).view(np.float32).copy()

    # ------------------------------------------------------------------
    # Unit execution
    # ------------------------------------------------------------------

    def _execute_ndu_ops(
        self,
        ops: tuple[NDUOp, ...],
        dlast_snapshot: np.ndarray,
        increments: list[tuple[int, int]],
    ) -> None:
        if not ops:
            return
        pre_state = self.ndu_regs.copy()
        results: list[tuple[int, np.ndarray]] = []
        for op in ops:
            src = self._raw_row(op.src, pre_state, dlast_snapshot, increments)
            if op.opcode is NDUOpcode.BYPASS:
                result = ndu_unit.bypass(src)
            elif op.opcode is NDUOpcode.ROTATE:
                result = ndu_unit.rotate(src, op.amount, op.direction)
            elif op.opcode is NDUOpcode.BROADCAST64:
                index = self.addr_regs[op.index_reg]
                result = ndu_unit.broadcast64(src, index)
                if op.index_increment:
                    increments.append((op.index_reg, 1))
            elif op.opcode is NDUOpcode.EXPAND:
                # The decompressor fills elided positions with the weight
                # zero offset, so pruned quantized weights expand to the
                # code the NPU's offset subtraction maps to zero.
                result = ndu_unit.expand(
                    src, self.config.row_bytes, zero=self.weight_zero_offset
                )
            elif op.opcode is NDUOpcode.MERGE:
                mask = self._raw_row(op.src2, pre_state, dlast_snapshot, increments)
                result = ndu_unit.masked_merge(src, pre_state[op.dst], mask)
            else:  # pragma: no cover - enum is closed
                raise ExecutionError(f"unknown NDU opcode {op.opcode}")
            results.append((op.dst, result))
        for dst, result in results:
            self.ndu_regs[dst] = result
            if dst == 0:
                # dlast shadows NDU register n0 (Fig. 6's d0_mov_reg /
                # d_last_latched pair): DLAST reads see the value n0 held
                # entering the cycle, writes to n0 re-arm the latch.
                self.dlast = result.copy()

    def _execute_npu(
        self,
        op: NPUOp,
        dlast_snapshot: np.ndarray,
        increments: list[tuple[int, int]],
    ) -> None:
        if op.opcode is NPUOpcode.NOP:
            return
        info = dtype_info(op.dtype)
        data = self._npu_lanes(op.data, op.dtype, dlast_snapshot, increments)
        weight = self._npu_lanes(op.weight, op.dtype, dlast_snapshot, increments)
        if op.zero_offset:
            if info.is_float:
                raise ExecutionError("zero offsets do not apply to bf16 lanes")
            data = data - self.data_zero_offset
            weight = weight - self.weight_zero_offset
        if op.data_shift:
            data = (
                data * np.float32(2.0 ** -op.data_shift)
                if info.is_float
                else data >> op.data_shift
            )
        if op.from_neighbor:
            data = npu_unit.slide_from_neighbor(data)
        if op.opcode is NPUOpcode.CMPGT:
            if op.predicate is None:
                raise ExecutionError("CMPGT needs a destination predicate register")
            self.pred_regs[op.predicate] = npu_unit.compare_gt(data, weight)
            return
        mask = None if op.predicate is None else self.pred_regs[op.predicate]
        if info.is_float:
            self.acc_float = npu_unit.execute_float(op, data, weight, self.acc_float, mask)
        else:
            self.acc_int = npu_unit.execute_int(op, data, weight, self.acc_int, mask)
        if op.opcode is NPUOpcode.MAC:
            self.total_macs += self.config.lanes
            if self.perf_counters["macs"].add(self.config.lanes):
                self._pending_break = "perf_counter"

    def _execute_out(self, op: OutOp, increments: list[tuple[int, int]]) -> None:
        if op.opcode is OutOpcode.NOP:
            return
        if op.opcode is OutOpcode.REQUANT:
            info = dtype_info(op.dtype)
            if info.is_float:
                self.out_low, self.out_high = out_unit.float_output_rows(
                    self.acc_float, self.float_scale, op.activation
                )
            else:
                values = out_unit.requantize_lanes(
                    self.acc_int,
                    self.requant_multiplier,
                    self.requant_shift,
                    self.requant_offset,
                    op.dtype,
                )
                values = out_unit.apply_integer_activation(
                    values,
                    op.activation,
                    self.requant_offset,
                    self.act_qmax,
                    self.act_lut,
                    op.dtype,
                )
                self.out_low, self.out_high = out_unit.narrow_to_rows(values, op.dtype)
            return
        if op.opcode is OutOpcode.STORE:
            row = self.addr_regs[op.dst_addr_reg]
            source = self.out_high if op.source_high else self.out_low
            if self._san is not None:
                self._san.on_row_write("data", row, 1, self.total_cycles, self.pc)
            self.data_ram.write_row(row, source)
            if op.dst_increment:
                increments.append((op.dst_addr_reg, 1))
            return
        # STORE_ACC: spill the raw 32-bit accumulators as four rows, byte
        # j of every lane in row (base + j).
        base = self.addr_regs[op.dst_addr_reg]
        if self._san is not None:
            self._san.on_row_write("data", base, 4, self.total_cycles, self.pc)
        raw = np.ascontiguousarray(self.acc_int).view(np.uint8).reshape(-1, 4)
        for j in range(4):
            self.data_ram.write_row(base + j, np.ascontiguousarray(raw[:, j]))
        if op.dst_increment:
            increments.append((op.dst_addr_reg, 4))

    # ------------------------------------------------------------------
    # Sequencer
    # ------------------------------------------------------------------

    def _execute_seq(self, seq: SeqOp, pc: int) -> int:
        """Execute a sequencer op; returns the next pc."""
        opcode = seq.opcode
        if opcode is SeqOpcode.NOP:
            return pc + 1
        if opcode is SeqOpcode.HALT:
            self.halted = True
            return pc + 1
        if opcode is SeqOpcode.LOOP_BEGIN:
            if len(self.loop_stack) >= NUM_LOOP_COUNTERS:
                raise ExecutionError(
                    f"hardware loop nesting exceeds {NUM_LOOP_COUNTERS} counters"
                )
            self.loop_stack.append(_LoopFrame(body_start=pc + 1, remaining=seq.arg2))
            return pc + 1
        if opcode is SeqOpcode.LOOP_END:
            if not self.loop_stack:
                raise ExecutionError("endloop without a matching loop begin")
            frame = self.loop_stack[-1]
            frame.remaining -= 1
            if frame.remaining > 0:
                return frame.body_start
            self.loop_stack.pop()
            return pc + 1
        if opcode is SeqOpcode.SET_ADDR:
            self.addr_regs[seq.arg] = seq.arg2
            return pc + 1
        if opcode is SeqOpcode.ADD_ADDR:
            self.addr_regs[seq.arg] += seq.arg2
            return pc + 1
        if opcode is SeqOpcode.DMA_START:
            descriptor = self.dma_descriptors[seq.arg]
            if descriptor is None:
                raise ExecutionError(f"DMA descriptor {seq.arg} not configured")
            engine = self.dma_write if descriptor.write_to_dram else self.dma_read
            if self._san is not None:
                self._san.note_pc(pc)
            engine.start(descriptor, self.data_ram, self.weight_ram, self.total_cycles)
            return pc + 1
        if opcode is SeqOpcode.DMA_WAIT:
            if seq.arg not in SeqOp.DMA_WAIT_GROUPS:
                # An unknown engine group would wait on no engine at all —
                # silently skipping the synchronization point.
                raise ExecutionError(
                    f"DMA_WAIT engine group {seq.arg} is not a valid encoding (0..3)"
                )
            engines = []
            if seq.arg in (0, 1, 3):
                engines.append(self.dma_read)
            if seq.arg in (0, 2, 3):
                engines.append(self.dma_write)
            ready = max((e.busy_until for e in engines), default=0)
            stall = max(0, ready - self.total_cycles)
            self.total_cycles += stall
            self.dma_stall_cycles += stall
            self.perf_counters["dma_stall"].add(stall)
            if self._san is not None:
                self._san.on_dma_wait([e.name for e in engines], self.total_cycles)
            return pc + 1
        if opcode is SeqOpcode.EVENT:
            self.event_log.record(self.total_cycles, seq.arg, pc)
            return pc + 1
        if opcode is SeqOpcode.BREAK:
            self._pending_break = "breakpoint"
            return pc + 1
        raise ExecutionError(f"unknown sequencer opcode {opcode}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Top-level run loop
    # ------------------------------------------------------------------

    def _execute_instruction(self, instruction: Instruction) -> bool:
        """Execute the hardware-repeated issues of one instruction.

        Returns False when a breakpoint (perf-counter wraparound or n-step)
        pauses execution *mid-repeat*; the remaining iterations resume on
        the next :meth:`run` call, matching the hardware's ability to
        pause inside a long fused loop.
        """
        if instruction.repeat > 1 and instruction.seq.opcode is not SeqOpcode.NOP:
            raise ExecutionError(
                "sequencer ops cannot be combined with a hardware repeat count"
            )
        issue_cycles = instruction.issue_cycles()
        start = 0
        if self._resume_repeat is not None and self._resume_repeat[0] == self.pc:
            start = self._resume_repeat[1]
        self._resume_repeat = None
        if self.fastpath and instruction.repeat - start > 1:
            entry = self._fastpath_tables[self.iram.active_bank].get(self.pc)
            if entry is None or entry.kind != "repeat":
                fastpath_mod.note_stat(self.fastpath_stats, "misses")
            else:
                count = instruction.repeat - start
                reason = entry.preflight(self, count)
                if reason is None:
                    done = entry.run(self, count)
                    start += done
                    fastpath_mod.note_stat(self.fastpath_stats, "hits")
                    fastpath_mod.note_stat(self.fastpath_stats, "fused_trips", done)
                    if done < count:  # saturation: interpret the rest
                        fastpath_mod.note_stat(self.fastpath_stats, "fallbacks")
                else:
                    fastpath_mod.note_stat(self.fastpath_stats, "fallbacks")
        for iteration in range(start, instruction.repeat):
            increments: list[tuple[int, int]] = []
            dlast_snapshot = self.dlast
            self._execute_ndu_ops(instruction.ndu_ops, dlast_snapshot, increments)
            if instruction.npu is not None:
                self._execute_npu(instruction.npu, dlast_snapshot, increments)
            if instruction.out is not None:
                self._execute_out(instruction.out, increments)
            for reg, amount in increments:
                self.addr_regs[reg] += amount
            self.total_cycles += issue_cycles
            self.total_issues += 1
            if self.perf_counters["cycles"].add(issue_cycles):
                self._pending_break = "perf_counter"
            if (self.n_step is not None and self._next_step_break is not None
                    and self.total_cycles >= self._next_step_break):
                self._next_step_break = self.total_cycles + self.n_step
                self._pending_break = self._pending_break or "n_step"
            if self._pending_break is not None and iteration + 1 < instruction.repeat:
                self._resume_repeat = (self.pc, iteration + 1)
                return False
        return True

    def bind_metrics(self, registry=None, prefix: str = "ncore") -> None:
        """Expose the hardware performance counters through a registry.

        The registered views wrap the live :class:`PerfCounter` objects,
        so offsets and wraparound breakpoints configured either way stay
        in effect (section IV-F semantics).
        """
        registry = registry if registry is not None else get_metrics()
        for name, counter in self.perf_counters.items():
            registry.bind_hardware(
                f"{prefix}.hw.{name}", counter,
                description=f"Ncore hardware performance counter {name!r}",
            )

    def step(self, budget_cycles: int = 100_000_000) -> MachineRunResult:
        """Execute from the current pc for at most ``budget_cycles``.

        The resumable core of the sequencer: all state (pc, loop stack,
        mid-repeat position, debug breakpoints) lives on the machine, so
        calling ``step`` again continues exactly where the previous call
        stopped — whether it stopped on the cycle budget, a breakpoint,
        an n-step window or a halt.  This is what lets a discrete-event
        engine interleave many Ncore instances under one clock: each
        gets a slice of cycles per turn instead of a blocking loop.
        """
        start_cycles = self.total_cycles
        start_instructions = self.total_instructions
        start_issues = self.total_issues
        start_macs = self.total_macs
        start_dma_stall = self.dma_stall_cycles
        self._pending_break: str | None = None
        if self.n_step is not None and self._next_step_break is None:
            self._next_step_break = self.total_cycles + self.n_step
        self.running = True
        stop_reason = "halt"
        try:
            while not self.halted:
                if self.total_cycles - start_cycles >= budget_cycles:
                    stop_reason = "cycle_budget"
                    break
                if self.fastpath:
                    entry = self._fastpath_tables[self.iram.active_bank].get(self.pc)
                    if (
                        entry is not None
                        and entry.kind == "region"
                        and len(self.loop_stack) < NUM_LOOP_COUNTERS
                    ):
                        # Fuse only whole trips that fit in the remaining
                        # budget; the interpreter finishes any partial trip
                        # so budget-sliced stepping stays cycle-exact.
                        remaining = budget_cycles - (self.total_cycles - start_cycles)
                        trips = min(
                            entry.trips,
                            (remaining - entry.prologue_cycles) // entry.cycles_per_trip,
                        )
                        if trips > 0 and entry.preflight(self, trips) is None:
                            done = entry.run(self, trips)
                            fastpath_mod.note_stat(self.fastpath_stats, "hits")
                            fastpath_mod.note_stat(
                                self.fastpath_stats, "fused_trips", done
                            )
                            if done < entry.trips:
                                # Re-enter the loop mid-flight, exactly as if
                                # the interpreter had just taken the LOOP_END
                                # branch back for the (done+1)-th trip.
                                self.loop_stack.append(
                                    _LoopFrame(
                                        body_start=self.pc + 1,
                                        remaining=entry.trips - done,
                                    )
                                )
                                self.pc += 1
                                if done < trips:  # saturation fallback
                                    fastpath_mod.note_stat(
                                        self.fastpath_stats, "fallbacks"
                                    )
                            else:
                                self.pc += entry.length
                            continue
                        if trips > 0:
                            fastpath_mod.note_stat(self.fastpath_stats, "fallbacks")
                instruction = self.iram.fetch(self.pc)
                pc = self.pc
                completed = self._execute_instruction(instruction)
                if not completed:
                    # Paused mid-repeat: the pc stays put; the remaining
                    # iterations resume on the next step() call.
                    stop_reason = self._pending_break or "n_step"
                    break
                self.total_instructions += 1
                if self.perf_counters["instructions"].add(1):
                    self._pending_break = "perf_counter"
                self.pc = self._execute_seq(instruction.seq, pc)
                if self._pending_break is not None:
                    stop_reason = self._pending_break
                    break
                if self.halted:
                    # A halt ends the n-step window below naturally; the
                    # loop condition reports it as "halt".
                    continue
                if self.n_step is not None and self.total_cycles >= self._next_step_break:
                    self._next_step_break = self.total_cycles + self.n_step
                    stop_reason = "n_step"
                    break
        finally:
            self.running = False
        return MachineRunResult(
            cycles=self.total_cycles - start_cycles,
            instructions=self.total_instructions - start_instructions,
            issues=self.total_issues - start_issues,
            halted=self.halted,
            # Report the *actual* stop reason: a perf-counter or n-step
            # break that coincides with a halt must not be masked, or the
            # debugger misses the breakpoint it configured.
            stop_reason=stop_reason,
            macs=self.total_macs - start_macs,
            dma_stall_cycles=self.dma_stall_cycles - start_dma_stall,
        )

    def run(self, max_cycles: int = 100_000_000) -> MachineRunResult:
        """Execute until halt, breakpoint or budget: one traced step."""
        start_cycles = self.total_cycles
        result = self.step(max_cycles)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_cycle_span(
                "ncore.run", "ncore", start_cycles, self.total_cycles,
                args={
                    "instructions": result.instructions,
                    "issues": result.issues,
                    "stop_reason": result.stop_reason,
                    "macs": result.macs,
                    "dma_stall_cycles": result.dma_stall_cycles,
                },
            )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("ncore.cycles", unit="cycles").inc(result.cycles)
            metrics.counter("ncore.instructions").inc(result.instructions)
            metrics.counter("ncore.issues").inc(result.issues)
            metrics.counter("ncore.macs").inc(result.macs)
            metrics.counter("ncore.dma_stall_cycles", unit="cycles").inc(
                result.dma_stall_cycles
            )
            metrics.counter("ncore.runs").inc()
            if self._san is not None:
                self._san.publish_metrics(metrics)
        return result

    def execute_program(
        self, program: list[Instruction], max_cycles: int = 100_000_000
    ) -> MachineRunResult:
        """Convenience: load a program, run it to completion."""
        self.load_program(program)
        return self.run(max_cycles=max_cycles)

    # ------------------------------------------------------------------
    # Bus-side access helpers (x86 / runtime view)
    # ------------------------------------------------------------------

    def write_data_ram(self, offset: int, payload: bytes) -> None:
        if self._san is not None:
            self._san.on_host_write("data", offset, len(payload))
        self.data_ram.write_bytes(offset, payload)

    def read_data_ram(self, offset: int, length: int) -> bytes:
        return self.data_ram.read_bytes(offset, length)

    def write_weight_ram(self, offset: int, payload: bytes) -> None:
        if self._san is not None:
            self._san.on_host_write("weight", offset, len(payload))
        self.weight_ram.write_bytes(offset, payload)

    def read_weight_ram(self, offset: int, length: int) -> bytes:
        return self.weight_ram.read_bytes(offset, length)
