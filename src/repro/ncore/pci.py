"""Ncore's PCI device personality.

Section IV-A and V-D: Ncore sits on the ring bus but "reports itself to the
system as a standard PCI device" of coprocessor type, detected through
normal PCI enumeration.  Protected settings — DMA address ranges, power —
live as custom fields in PCI configuration space, which only kernel code
may access; everything else is reached through memory-mapped BARs.
"""

from __future__ import annotations

from dataclasses import dataclass

# VIA Technologies' vendor id; Centaur was VIA's x86 design subsidiary.
VENDOR_ID = 0x1106
DEVICE_ID = 0x9C20  # model-chosen device id for the Ncore function
CLASS_COPROCESSOR = 0x0B40  # class 0x0B (processor), subclass 0x40 (co-proc)

# Offsets of the custom protected fields in config space (capability area).
_CFG_POWER = 0x40
_CFG_DMA_BASE_LO = 0x44
_CFG_DMA_BASE_HI = 0x48


class PciAccessError(PermissionError):
    """A user-mode access touched kernel-only configuration space."""


@dataclass
class Bar:
    """One PCI base address register (a memory-mapped window)."""

    index: int
    size: int
    description: str
    address: int | None = None  # assigned at enumeration


class NcorePciDevice:
    """The PCI configuration-space model for Ncore.

    The BARs expose (0) the control/status register block, (1) the
    instruction RAM, and (2) the data/weight SRAM aperture.  The custom
    config-space fields gate power state and the DMA window base — the
    settings the kernel driver is "the sole gatekeeper" for.
    """

    def __init__(self, sram_bytes: int) -> None:
        self.vendor_id = VENDOR_ID
        self.device_id = DEVICE_ID
        self.class_code = CLASS_COPROCESSOR
        self.bars = [
            Bar(0, 64 * 1024, "control and status registers"),
            Bar(1, 16 * 1024, "instruction RAM window"),
            Bar(2, sram_bytes, "data/weight SRAM aperture"),
        ]
        self.powered_on = False
        self.dma_window_base = 0

    def assign_bars(self, base_address: int) -> int:
        """Enumeration-time BAR assignment; returns the next free address."""
        address = base_address
        for bar in self.bars:
            # PCI BARs are naturally aligned to their size.
            if address % bar.size:
                address += bar.size - (address % bar.size)
            bar.address = address
            address += bar.size
        return address

    def config_read(self, offset: int) -> int:
        """Config-space read (kernel or user; reads are unprivileged)."""
        if offset == 0x00:
            return self.vendor_id | (self.device_id << 16)
        if offset == 0x08:
            return self.class_code << 16
        if offset == _CFG_POWER:
            return int(self.powered_on)
        if offset == _CFG_DMA_BASE_LO:
            return self.dma_window_base & 0xFFFFFFFF
        if offset == _CFG_DMA_BASE_HI:
            return self.dma_window_base >> 32
        return 0

    def config_write(self, offset: int, value: int, kernel_mode: bool) -> None:
        """Config-space write; protected fields require kernel mode."""
        if offset in (_CFG_POWER, _CFG_DMA_BASE_LO, _CFG_DMA_BASE_HI) and not kernel_mode:
            raise PciAccessError(
                "protected Ncore configuration fields are only accessible from "
                "system kernel code (section V-D)"
            )
        if offset == _CFG_POWER:
            self.powered_on = bool(value & 1)
        elif offset == _CFG_DMA_BASE_LO:
            self.dma_window_base = (self.dma_window_base & ~0xFFFFFFFF) | (
                value & 0xFFFFFFFF
            )
        elif offset == _CFG_DMA_BASE_HI:
            self.dma_window_base = (self.dma_window_base & 0xFFFFFFFF) | (value << 32)
        # writes to other offsets are ignored, as on real hardware

    @property
    def is_coprocessor(self) -> bool:
        """True when the class code marks this device as a coprocessor."""
        return (self.class_code >> 8) == 0x0B and (self.class_code & 0xFF) == 0x40
