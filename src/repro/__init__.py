"""Reproduction of the Centaur Ncore deep-learning coprocessor (ISCA 2020).

The package is organised as the paper's system is:

- :mod:`repro.dtypes`   -- numerics: bfloat16, saturating integers, quantization.
- :mod:`repro.isa`      -- the Ncore VLIW-like instruction set and assembler.
- :mod:`repro.ncore`    -- the 4096-byte-wide SIMD coprocessor simulator.
- :mod:`repro.soc`      -- the CHA SoC substrate: ring bus, DRAM, L3, x86 cores.
- :mod:`repro.graph`    -- the Graph Compiler Library (GCL): IR, passes, planner.
- :mod:`repro.nkl`      -- the Ncore Kernel Library: hand-scheduled kernels.
- :mod:`repro.runtime`  -- driver model, user runtime, delegate integration.
- :mod:`repro.quantize` -- post-training quantized-model converter.
- :mod:`repro.models`   -- MobileNet-V1, ResNet-50-v1.5, SSD-MobileNet-V1, GNMT.
- :mod:`repro.vcl`      -- vector class library used for algorithm prototyping.
- :mod:`repro.perf`     -- MLPerf-style harness and published comparison data.
"""

__version__ = "1.0.0"
