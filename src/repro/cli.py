"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info``                  -- the CHA/Ncore configuration and peak numbers
- ``selftest``              -- run the power-on self-test on a fresh SoC model
- ``models``                -- the model zoo with Table V characteristics
- ``bench <model>``         -- latency/throughput/split for one zoo model
- ``serve <model>``         -- MLPerf Server scenario on the event engine
  (``--slo-ms`` arms the SLO monitor; ``--telemetry``/``--prometheus``/
  ``--harvest``/``--flamegraph`` write the telemetry surfaces)
- ``top [<model>]``         -- live ``top``-style serving dashboard, or
  ``--replay frames.jsonl`` to re-render a harvested run
- ``reproduce``             -- regenerate every paper table/figure in one run
- ``compile <model|path>``  -- compile through the staged driver; ``--dump-ir``
  prints per-stage IR, ``-O{0,1,2}`` picks the pipeline preset
- ``run <graph-path>``      -- execute a serialized GIR on a random input
- ``trace <model>``         -- run one traced inference, write Perfetto JSON
- ``lint <model|path>``     -- run the static analyzers; non-zero exit on errors
- ``explore``               -- design-space sweep with an energy/area Pareto
  frontier (``--grid``/``--models``/``--json``/``--csv``)
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

# Mirrors ``repro.runtime.TIER_CHOICES``; kept as a literal so building the
# argument parser (``repro --help``) never imports the runtime stack.  A
# test asserts the two stay in sync.
_TIER_CHOICES = ("auto", "interpreter", "fastpath", "replay", "codegen")
_TIER_HELP = (
    "execution tier: auto (replay + Tier-3 codegen when compiled at O2), "
    "interpreter, fastpath, replay, or codegen"
)


def _cmd_info(args) -> int:
    from repro.ncore import NcoreConfig
    from repro.soc import ChaSoc

    cfg = NcoreConfig()
    soc = ChaSoc()
    print("CHA SoC model")
    print(f"  x86 cores:        {len(soc.cores)} (CNS, {cfg.clock_hz / 1e9:.1f} GHz)")
    print(f"  ring bandwidth:   {soc.ring.bandwidth_per_direction / 1e9:.0f} GB/s per direction")
    print(f"  DRAM bandwidth:   {soc.dram.peak_bandwidth / 1e9:.1f} GB/s (4x DDR4-3200)")
    print(f"  shared L3:        {soc.l3.size_bytes // (1 << 20)} MB")
    print("Ncore")
    print(f"  slices:           {cfg.slices} x 256 B = {cfg.row_bytes} lanes")
    print(f"  SRAM:             {cfg.total_ram_bytes // (1 << 20)} MB "
          f"(data {cfg.data_ram_bytes // (1 << 20)} + weight {cfg.weight_ram_bytes // (1 << 20)})")
    print(f"  peak int8:        {cfg.peak_ops_per_second(1) / 1e12:.2f} TOPS")
    print(f"  peak bf16:        {cfg.peak_ops_per_second(3) / 1e12:.2f} TOPS")
    print(f"  SRAM throughput:  {cfg.sram_bandwidth_bytes_per_second() / 1e12:.1f} TB/s")
    return 0


def _cmd_selftest(args) -> int:
    from repro.runtime import NcoreKernelDriver
    from repro.soc import ChaSoc

    driver = NcoreKernelDriver(ChaSoc())
    driver.probe()
    report = driver.self_test()
    for name in ("ram_march_ok", "mac_datapath_ok", "dma_loopback_ok", "debug_fabric_ok"):
        status = "PASS" if getattr(report, name) else "FAIL"
        print(f"  {name:<18} {status}")
    if report.failures:
        for failure in report.failures:
            print(f"  failure: {failure}")
        return 1
    print("POST passed")
    return 0


def _cmd_models(args) -> int:
    from repro.models import PAPER_CHARACTERISTICS

    print(f"{'key':<18} {'model':<18} {'MACs':>8} {'weights':>9} {'MACs/wt':>8}")
    for key, info in PAPER_CHARACTERISTICS.items():
        graph = info.build()
        macs, weights = graph.count_macs(), graph.count_weights()
        print(f"{key:<18} {info.display:<18} {macs / 1e9:7.2f}B {weights / 1e6:8.1f}M "
              f"{macs / weights:8.0f}")
    return 0


def _cmd_bench(args) -> int:
    from repro.models import PAPER_CHARACTERISTICS
    from repro.ncore.fastpath import set_fastpath_default
    from repro.perf.simbench import measure_inner_loop
    from repro.perf.system import get_system

    if args.model not in PAPER_CHARACTERISTICS:
        print(f"unknown model {args.model!r}; try one of "
              f"{sorted(PAPER_CHARACTERISTICS)}", file=sys.stderr)
        return 2
    set_fastpath_default(args.fastpath and args.tier != "interpreter")
    system = get_system(args.model)
    split = system.workload_split()
    print(f"{system.info.display} on one CHA socket")
    print(f"  Ncore portion:        {split['ncore'] * 1e3:8.3f} ms "
          f"({split['ncore'] / split['total']:.0%})")
    print(f"  x86 portion:          {split['x86'] * 1e3:8.3f} ms")
    print(f"  SingleStream latency: {system.single_stream_latency_seconds() * 1e3:8.3f} ms")
    print(f"  Offline throughput:   {system.offline_throughput_ips(cores=args.cores):8.1f} IPS "
          f"({args.cores} cores)")
    use_fastpath = args.fastpath and args.tier != "interpreter"
    inner = measure_inner_loop(fastpath=use_fastpath)
    tier = "fastpath" if use_fastpath else "interpreter"
    print(f"  Simulator inner loop: {inner['cycles_per_second']:8.0f} cycles/s "
          f"({tier})")
    if args.tier != "auto":
        from repro.perf.simbench import measure_zoo_end_to_end

        zoo = measure_zoo_end_to_end(args.model, tier=args.tier, warmup=1)
        print(f"  Zoo end-to-end:       {zoo['queries_per_second']:8.2f} "
              f"queries/s (tier {args.tier}, steady state)")
        coverage = zoo.get("coverage")
        if coverage is not None:
            print(f"  Codegen coverage:     {coverage:8.0%} of segments have "
                  f"macro-kernels")
            if coverage == 0.0:
                print(f"  warning: tier {args.tier!r} covered no segments of "
                      f"{args.model}; queries fell back to the interpreter walk",
                      file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import contextlib

    from repro.models import PAPER_CHARACTERISTICS
    from repro.obs.attrib import install_attrib
    from repro.obs.metrics import MetricsRegistry, install_metrics
    from repro.perf.serving import run_server
    from repro.perf.system import get_system

    key = _resolve_model_key(args.model)
    if key is None:
        print(f"unknown model {args.model!r}; try one of "
              f"{sorted(PAPER_CHARACTERISTICS)}", file=sys.stderr)
        return 2
    if args.queries < 1:
        print("--queries must be at least 1", file=sys.stderr)
        return 2
    if args.qps is not None and args.qps <= 0:
        print("--qps must be positive", file=sys.stderr)
        return 2
    slo_seconds = args.slo_ms * 1e-3 if args.slo_ms is not None else None
    telemetry_interval = args.interval if args.telemetry else None
    with contextlib.ExitStack() as stack:
        if args.tier != "auto":
            from repro.runtime import (
                TierPolicy,
                get_default_tier_policy,
                set_default_tier_policy,
            )

            previous_policy = get_default_tier_policy()
            set_default_tier_policy(TierPolicy.for_tier(args.tier))
            stack.callback(set_default_tier_policy, previous_policy)
        registry = None
        if args.telemetry or args.prometheus:
            registry = stack.enter_context(install_metrics(MetricsRegistry()))
        tracer = None
        if args.trace:
            from repro.obs.tracer import Tracer, install_tracer

            tracer = stack.enter_context(install_tracer(Tracer()))
        collector = None
        if args.harvest or args.flamegraph:
            collector = stack.enter_context(install_attrib())
        result = run_server(
            get_system(key),
            qps=args.qps,
            queries=args.queries,
            seed=args.seed,
            max_batch=args.max_batch,
            max_wait=args.max_wait_us * 1e-6,
            cores=args.cores,
            sockets=args.sockets,
            slo_latency_seconds=slo_seconds,
            window_seconds=args.window,
            telemetry_interval=telemetry_interval,
        )
    print(f"{PAPER_CHARACTERISTICS[key].display} Server scenario "
          f"({result.queries} queries, seed {result.seed}, "
          f"{result.sockets} socket{'s' if result.sockets > 1 else ''})")
    print(f"  offered load:    {result.offered_qps:10,.1f} QPS")
    print(f"  sustained:       {result.sustained_qps:10,.1f} QPS")
    print(f"  latency p50:     {result.p50_latency_ms:10.3f} ms")
    print(f"  latency p90:     {result.p90_latency_seconds * 1e3:10.3f} ms")
    print(f"  latency p99:     {result.p99_latency_ms:10.3f} ms")
    print(f"  mean batch size: {result.mean_batch_size:10.2f} "
          f"(max {result.max_batch}, wait {result.max_wait_seconds * 1e6:.0f} us)")
    if result.slo is not None:
        status = "OK" if result.slo["budget_remaining"] >= 0 else "VIOLATED"
        print(f"  SLO {args.slo_ms:.1f} ms:    "
              f"attainment {result.slo['attainment'] * 100:6.2f}%  "
              f"burn {result.slo['burn_rate']:.2f}x  [{status}]")
    if args.trace:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(args.trace, tracer, registry)
        print(f"  wrote {args.trace} ({len(tracer.spans)} spans, "
              f"{len(tracer.trace_ids())} query trace trees; "
              "open at https://ui.perfetto.dev)")
    if args.telemetry:
        from repro.obs.top import write_frames

        count = write_frames(args.telemetry, result.frames)
        print(f"  wrote {args.telemetry} ({count} telemetry frames; "
              f"view with: repro top --replay {args.telemetry})")
    if args.prometheus:
        from repro.obs.prometheus import write_prometheus

        write_prometheus(args.prometheus, registry)
        print(f"  wrote {args.prometheus} ({len(registry.names())} metrics, "
              "OpenMetrics text)")
    if args.harvest:
        count = collector.write_jsonl(args.harvest)
        print(f"  wrote {args.harvest} ({count} segment-feature records)")
    if args.flamegraph:
        with open(args.flamegraph, "w", encoding="utf-8") as handle:
            handle.write(collector.collapsed_stacks() + "\n")
        print(f"  wrote {args.flamegraph} (collapsed stacks for flamegraph.pl)")
    return 0


def _cmd_top(args) -> int:
    from repro.obs.top import read_frames, render_frames

    ansi = not args.no_ansi
    if args.replay:
        try:
            frames = read_frames(args.replay)
        except FileNotFoundError:
            print(f"no such frame file: {args.replay}", file=sys.stderr)
            return 2
        if not frames:
            print(f"no frames in {args.replay}", file=sys.stderr)
            return 1
        count = render_frames(frames, sys.stdout, ansi=ansi)
        print(f"({count} frames from {args.replay})")
        return 0
    if not args.model:
        print("a model key (or --replay FILE) is required", file=sys.stderr)
        return 2
    from repro.models import PAPER_CHARACTERISTICS
    from repro.perf.serving import run_server
    from repro.perf.system import get_system

    key = _resolve_model_key(args.model)
    if key is None:
        print(f"unknown model {args.model!r}; try one of "
              f"{sorted(PAPER_CHARACTERISTICS)}", file=sys.stderr)
        return 2
    slo_seconds = args.slo_ms * 1e-3 if args.slo_ms is not None else None
    result = run_server(
        get_system(key),
        qps=args.qps,
        queries=args.queries,
        seed=args.seed,
        slo_latency_seconds=slo_seconds,
        window_seconds=args.window,
        telemetry_interval=args.interval,
    )
    count = render_frames(
        result.frames, sys.stdout, ansi=ansi, max_batch=result.max_batch
    )
    print(f"({count} frames, {result.queries} queries, "
          f"sustained {result.sustained_qps:,.1f} QPS)")
    return 0


def _cmd_reproduce(args) -> int:
    from repro.perf.report import generate_report

    print(generate_report())
    return 0


def _zoo_pipeline(key: str, info, opt_level: str, seed: int):
    """Compose the zoo compile pipeline: optimize -> quantize -> backend.

    Zoo models follow the benchmark path — GCL optimization on the float
    graph, then PTQ conversion (uint8; bf16 for GNMT), then the backend
    stages.  Built as a custom :class:`~repro.compiler.Pipeline` so the
    quantize step shows up in ``--dump-ir`` and stage stats like any
    other stage.  The calibration seed is part of the pipeline id (and
    therefore the cache key): different calibration data is a different
    artifact.
    """
    from repro.compiler import Pipeline, Stage, get_pipeline

    def quantize(ctx):
        from repro.quantize import calibrate, convert_to_bf16, quantize_graph

        nodes_before = len(ctx.graph.nodes)
        if key == "gnmt":
            ctx.graph = convert_to_bf16(ctx.graph)
            mode = "bf16"
        else:
            batches = [info.sample_input(ctx.graph, seed=seed)]
            ctx.graph = quantize_graph(ctx.graph, calibrate(ctx.graph, batches))
            mode = "uint8"
        return {"mode": mode, "nodes_before": nodes_before,
                "nodes_after": len(ctx.graph.nodes)}

    preset = get_pipeline(opt_level)
    stages = [s for s in preset.stages if s.name == "optimize"]
    stages.append(Stage("quantize", quantize, "PTQ conversion (Table V path)"))
    stages.extend(s for s in preset.stages if s.name != "optimize")
    return Pipeline(f"zoo-{opt_level}-s{seed}", stages)


def _print_ir_dump(result, dump: str) -> int:
    """Print collected IR snapshots: full text for one stage, or the
    input IR plus per-stage unified diffs for ``all``."""
    from repro.compiler import ir_diff

    snapshots = result.snapshots
    if dump != "all":
        if dump not in snapshots:
            print(f"no IR snapshot for stage {dump!r}; have "
                  f"{', '.join(snapshots)}", file=sys.stderr)
            return 2
        print(f"=== IR after {dump} ===")
        print(snapshots[dump])
        return 0
    names = list(snapshots)
    print(f"=== IR: {names[0]} ===")
    print(snapshots[names[0]])
    for previous, current in zip(names, names[1:], strict=False):
        print(f"=== IR after {current} ===")
        diff = ir_diff(snapshots[previous], snapshots[current],
                       before_name=previous, after_name=current)
        print(diff if diff else "(unchanged)")
    return 0


def _cmd_compile(args) -> int:
    from repro import obs
    from repro.compiler import USE_DEFAULT_CACHE, CompileCache, compile_graph

    from repro.models import PAPER_CHARACTERISTICS

    pipeline_id = "O0" if args.no_optimize else args.opt_level
    pipeline = pipeline_id
    key = _resolve_model_key(args.target)
    if key is not None:
        name = key
        info = PAPER_CHARACTERISTICS[key]
        graph = info.build()
        pipeline = _zoo_pipeline(key, info, pipeline_id, args.seed)
    else:
        from repro.graph.frontends import load_graph

        try:
            name, graph = args.target, load_graph(args.target)
        except FileNotFoundError:
            print(f"unknown model or graph path {args.target!r}; zoo keys: "
                  f"{sorted(PAPER_CHARACTERISTICS)}", file=sys.stderr)
            return 2
    if args.cache_dir:
        cache = CompileCache(directory=args.cache_dir)
    elif args.no_cache:
        cache = None
    else:
        cache = USE_DEFAULT_CACHE
    with obs.observe() as (tracer, _metrics):
        result = compile_graph(
            graph, pipeline=pipeline, name=name, cache=cache,
            collect_ir=args.dump_ir is not None,
        )
    compiled = result.model
    print(compiled.summary())
    cycles = compiled.ncore_cycles()
    print(f"Ncore portion: {cycles:,} cycles ({cycles / 2.5e9 * 1e6:.1f} us at 2.5 GHz)")
    if result.cache_hit:
        print(f"  cache hit ({result.key[:16]}...)")
    for stats in result.stats:
        print(f"  {stats.summary()}")
    if args.dump_ir is not None:
        spans = tracer.spans_on("compiler")
        print(f"  {len(spans)} compiler spans recorded")
        return _print_ir_dump(result, args.dump_ir)
    return 0


def _sanitize_session(session, compiled, result, feeds, seed: int) -> int:
    """The ``repro run --sanitize`` verification pass; returns an exit code.

    Composes all four nsan oracles into one shared-model report: the
    static hazard rules over the compiled loadables, a two-run output
    determinism check, a shadow-SRAM microkernel on the session's machine,
    and the fastpath-vs-interpreter equivalence oracle.
    """
    from repro.analyze import AnalysisReport, analyze_model, render_text
    from repro.analyze.diagnostics import diag
    from repro.isa import assemble
    from repro.ncore import DmaDescriptor
    from repro.sanitize import oracle_compare
    from repro.sanitize.sanitizer import DIVERGENCE

    report = AnalysisReport()
    # 1. Static layer: the happens-before hazard rules over the schedule.
    static = analyze_model(compiled)
    report.extend(
        d for d in static.diagnostics if d.rule.startswith("hazard.")
    )
    # 2. Determinism: the same feeds must produce byte-identical outputs.
    rerun = session.run(feeds)
    for name, value in result.outputs.items():
        if np.asarray(value).tobytes() != np.asarray(rerun.outputs[name]).tobytes():
            report.extend([diag(
                DIVERGENCE,
                f"two runs with identical feeds disagree on output {name!r}",
                artifact=compiled.name, element=name,
            )])
    # 3. Shadow-SRAM sanitizer: a DMA + MAC-loop microkernel on the
    # session's machine with every access checked.
    machine = session.mapping.machine()
    sanitizer = machine.arm_sanitizer(True)
    try:
        payload = np.tile(np.arange(64, dtype=np.uint8), 64).tobytes()
        machine.memory.write(session.driver.dma_address_for(0), payload)
        machine.set_dma_descriptor(
            0,
            DmaDescriptor(False, True, ram_row=0, rows=1, dram_addr=0, through_l3=True),
        )
        machine.write_data_ram(0, payload)
        machine.execute_program(assemble(
            "dmastart 0\ndmawait 1\n"
            "setaddr a0, 0\nsetaddr a3, 0\nsetaddr a5, 0\n"
            "loop 16 {\n"
            "  bypass n0, dram[a0]\n"
            "  broadcast64 n1, wtram[a3], a5, inc\n"
            "  mac.uint8 n0, n1\n"
            "}\n"
            "setaddr a6, 64\nrequant.uint8 relu\nstore a6\nhalt"
        ))
        report.merge(sanitizer.report)
        checked = (sanitizer.stats["reads_checked"]
                   + sanitizer.stats["writes_checked"])
        print(f"  sanitizer: {checked} accesses and "
              f"{sanitizer.stats['dma_transfers']} transfer(s) checked")
    finally:
        machine.arm_sanitizer(False)
    # 4. Equivalence oracle: fastpath and interpreter must agree bit-for-bit.
    def setup(oracle_machine) -> None:
        oracle_machine.write_data_ram(0, payload)
        oracle_machine.write_weight_ram(0, payload)

    report.merge(oracle_compare(
        "setaddr a0, 0\nsetaddr a3, 0\nsetaddr a5, 0\n"
        "loop 64 {\n"
        "  bypass n0, dram[a0]\n"
        "  broadcast64 n1, wtram[a3], a5, inc\n"
        "  mac.uint8 n0, n1\n"
        "}\n"
        "setaddr a6, 64\nrequant.uint8 relu\nstore a6\nhalt",
        setup=setup, name=compiled.name,
    ))
    print(f"  sanitize {compiled.name}: ", end="")
    print(render_text(report))
    return 0 if report.ok else 1


def _cmd_run(args) -> int:
    from repro.runtime import InferenceSession, compile_model

    try:
        name, graph = _lint_target_graph(args.path, args.seed)
    except FileNotFoundError:
        from repro.models import PAPER_CHARACTERISTICS

        print(f"unknown model or graph path {args.path!r}; zoo keys: "
              f"{sorted(PAPER_CHARACTERISTICS)}", file=sys.stderr)
        return 2
    compiled = compile_model(graph, optimize=not args.no_optimize, name=name)
    session = InferenceSession(compiled, policy=args.tier)
    key = _resolve_model_key(args.path)
    if key is not None:
        from repro.models import PAPER_CHARACTERISTICS

        feeds = PAPER_CHARACTERISTICS[key].sample_input(
            compiled.graph, seed=args.seed
        )
    else:
        rng = np.random.default_rng(args.seed)
        feeds = {}
        for name in compiled.graph.inputs:
            tensor = compiled.graph.tensor(name)
            feeds[name] = (
                rng.integers(0, 100, size=tensor.shape).astype(np.int32)
                if tensor.type.dtype == "int32"
                else rng.uniform(-1, 1, size=tensor.shape).astype(np.float32)
            )
    result = session.run(feeds)
    for name, value in result.outputs.items():
        value = np.asarray(value)
        print(f"  output {name}: shape {value.shape}, "
              f"range [{value.min():.4g}, {value.max():.4g}]")
    timing = result.timing
    print(f"  latency: {timing.total_seconds * 1e6:.1f} us "
          f"(Ncore {timing.ncore_fraction:.0%}, "
          f"tier {session.executor.last_tier})")
    exit_code = 0
    if args.sanitize:
        exit_code = _sanitize_session(session, compiled, result, feeds, args.seed)
    session.close()
    return exit_code


def _lint_target_graph(target: str, seed: int):
    """Resolve a lint target into (display name, converted graph).

    Zoo model keys follow the benchmark path (GCL pipeline + int8
    quantization, bf16 for GNMT); anything else is treated as a serialized
    GIR path and linted as-is.
    """
    from repro.compiler import optimize_graph
    from repro.models import PAPER_CHARACTERISTICS
    from repro.quantize import calibrate, convert_to_bf16, quantize_graph

    key = _resolve_model_key(target)
    if key is not None:
        info = PAPER_CHARACTERISTICS[key]
        graph = info.build()
        optimize_graph(graph, in_place=True)
        if key == "gnmt":
            return key, convert_to_bf16(graph)
        batches = [info.sample_input(graph, seed=seed)]
        return key, quantize_graph(graph, calibrate(graph, batches))
    from repro.graph.frontends import load_graph

    return target, load_graph(target)


def _cmd_lint(args) -> int:
    from repro.analyze import (
        AnalysisReport,
        analyze_graph,
        analyze_model,
        build_loadable_hazard_graph,
        render_dot,
        render_json,
        render_text,
    )
    from repro.runtime import compile_model

    try:
        name, graph = _lint_target_graph(args.target, args.seed)
    except FileNotFoundError:
        from repro.models import PAPER_CHARACTERISTICS

        print(f"unknown model or graph path {args.target!r}; zoo keys: "
              f"{sorted(PAPER_CHARACTERISTICS)}", file=sys.stderr)
        return 2
    if args.graph_only and (args.hazards or args.dot):
        print("--hazards/--dot need the lowered loadables; "
              "drop --graph-only", file=sys.stderr)
        return 2
    suppress = tuple(args.suppress or ())
    if args.graph_only:
        report = analyze_graph(graph, suppress=suppress)
    else:
        # Lint the full artifact stack: compile without the strict gate so
        # every finding is reported here instead of raised mid-lowering.
        compiled = compile_model(graph, optimize=False, name=name, verify=False)
        report = analyze_model(compiled, suppress=suppress)
        if args.dot:
            graphs = [
                build_loadable_hazard_graph(compiled.graph, loadable)
                for _, loadable in sorted(compiled.loadables.items())
            ]
            with open(args.dot, "w", encoding="utf-8") as handle:
                handle.write(render_dot(graphs, name=name) + "\n")
            print(f"  wrote {args.dot} ({len(graphs)} happens-before graphs)")
    if args.hazards:
        report = AnalysisReport(
            [d for d in report.diagnostics if d.rule.startswith("hazard.")]
        )
    if args.json:
        print(render_json(report))
    else:
        label = "lint --hazards" if args.hazards else "lint"
        print(f"{label} {name}: ", end="")
        print(render_text(report, verbose=args.verbose))
    return 0 if report.ok else 1


def _resolve_model_key(name: str) -> str | None:
    """Match a zoo key exactly, by prefix, or by substring (must be unique)."""
    from repro.models import PAPER_CHARACTERISTICS

    if name in PAPER_CHARACTERISTICS:
        return name
    matches = [k for k in PAPER_CHARACTERISTICS if k.startswith(name)]
    if not matches:
        matches = [k for k in PAPER_CHARACTERISTICS if name in k]
    return matches[0] if len(matches) == 1 else None


def _trace_microkernel(session, tracer) -> None:
    """Run a real instrumented program on the session's Ncore machine.

    Stages one weight row through DMA (via the coherent L3 path) and runs
    a short MAC loop bracketed with event markers, so the trace carries
    genuine simulator event streams (event log, DMA engine, cache) and
    not just the NKL cycle schedule.
    """
    from repro.isa import assemble
    from repro.ncore import DmaDescriptor
    from repro.runtime.profiler import Profiler

    machine = session.mapping.machine()
    payload = np.tile(np.arange(64, dtype=np.uint8), 64).tobytes()
    machine.memory.write(session.driver.dma_address_for(0), payload)
    machine.set_dma_descriptor(
        0, DmaDescriptor(False, True, ram_row=0, rows=1, dram_addr=0, through_l3=True)
    )
    machine.write_data_ram(0, payload)
    profiler = Profiler(machine)
    program = profiler.instrument(
        [
            ("stage_weights", assemble("dmastart 0\ndmawait 1")),
            ("compute", assemble(
                "setaddr a0, 0\nsetaddr a3, 0\nsetaddr a5, 0\n"
                "loop 16 {\n"
                "  bypass n0, dram[a0]\n"
                "  broadcast64 n1, wtram[a3], a5, inc\n"
                "  mac.uint8 n0, n1\n"
                "}"
            )),
            ("writeback", assemble("setaddr a6, 64\nrequant.uint8 relu\nstore a6")),
        ]
    )
    profiler.run(program)


def _cmd_trace(args) -> int:
    from repro import obs
    from repro.models import PAPER_CHARACTERISTICS
    from repro.perf.mlperf import run_single_stream
    from repro.perf.system import BenchmarkSystem
    from repro.runtime import InferenceSession

    key = _resolve_model_key(args.model)
    if key is None:
        print(f"unknown model {args.model!r}; try one of "
              f"{sorted(PAPER_CHARACTERISTICS)}", file=sys.stderr)
        return 2
    if args.queries < 1:
        print("--queries must be at least 1", file=sys.stderr)
        return 2
    with obs.observe() as (tracer, metrics):
        # Compile through the delegate (GCL pipeline, partition, NKL).
        system = BenchmarkSystem(key)
        tracer.clock_hz = system.config.clock_hz
        # Open the device through the kernel driver and run one inference.
        session = InferenceSession(system.compiled, owner="repro-trace")
        session.soc.ncore.bind_metrics(metrics)
        feeds = system.info.sample_input(system.compiled.graph, seed=args.seed)
        session.run(feeds)
        # Exercise the simulator's own event streams (event log, DMA, L3).
        _trace_microkernel(session, tracer)
        session.close()
        # The MLPerf harness view: a short SingleStream run.
        result = run_single_stream(system, queries=args.queries, seed=args.seed)
    output = args.output or f"{key}.trace.json"
    obs.write_chrome_trace(output, tracer, metrics)
    tracks = tracer.tracks()
    print(f"{system.info.display}: {len(tracer.spans)} spans on "
          f"{len(tracks)} tracks ({', '.join(tracks)})")
    print(f"  p90 SingleStream latency: {result.p90_latency_ms:.3f} ms "
          f"({args.queries} queries)")
    print(f"  wrote {output} (open at https://ui.perfetto.dev)")
    if args.metrics_csv:
        with open(args.metrics_csv, "w", encoding="utf-8") as handle:
            handle.write(obs.metrics_csv(metrics))
        print(f"  wrote {args.metrics_csv} ({len(metrics.names())} metrics)")
    if args.render:
        print(obs.render_tracer(tracer, tracks=["ncore", "delegate.schedule"]))
        counters = obs.render_counters(metrics)
        if counters:
            print(counters)
    return 0


def _cmd_explore(args) -> int:
    from repro.explore import DEFAULT_GRID, enumerate_grid, parse_grid, run_sweep

    try:
        axes = parse_grid(args.grid) if args.grid else DEFAULT_GRID
        points = enumerate_grid(axes)
    except ValueError as error:
        print(f"bad --grid: {error}", file=sys.stderr)
        return 2
    models = tuple(m.strip() for m in args.models.split(",") if m.strip())
    try:
        result = run_sweep(
            points,
            models=models,
            seed=args.seed,
            execute_queries=args.execute,
        )
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(result.to_json() + "\n")
        print(f"wrote {args.json}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(result.to_csv())
        print(f"wrote {args.csv}")
    print(result.render(top=args.top))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Ncore/CHA reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="show the modelled hardware configuration")
    sub.add_parser("selftest", help="run the power-on self-test")
    sub.add_parser("models", help="list the model zoo (Table V)")
    sub.add_parser("reproduce", help="regenerate every paper table/figure")
    bench = sub.add_parser("bench", help="benchmark one zoo model")
    bench.add_argument("model", help="model key, e.g. resnet50_v15")
    bench.add_argument("--cores", type=int, default=8)
    bench.add_argument(
        "--fastpath", action=argparse.BooleanOptionalAction, default=True,
        help="use the trace-fused simulator tier (--no-fastpath for the "
             "pure interpreter)",
    )
    bench.add_argument(
        "--tier", choices=_TIER_CHOICES, default="auto",
        help=_TIER_HELP + "; naming a tier also benchmarks the zoo "
             "end-to-end path at that tier",
    )
    serve = sub.add_parser(
        "serve", help="run the MLPerf Server scenario on the event engine"
    )
    serve.add_argument("model", help="zoo model key or unique prefix, e.g. resnet")
    serve.add_argument("--qps", type=float, default=None,
                       help="offered Poisson load (default: 70%% of Offline capacity)")
    serve.add_argument("--queries", type=int, default=512)
    serve.add_argument("--max-batch", type=int, default=8,
                       help="dynamic batching: seal at this many queries")
    serve.add_argument("--max-wait-us", type=float, default=200.0,
                       help="dynamic batching: seal after this many microseconds")
    serve.add_argument("--cores", type=int, default=8, help="x86 cores per socket")
    serve.add_argument("--sockets", type=int, default=1)
    serve.add_argument("--tier", choices=_TIER_CHOICES, default="auto",
                       help=_TIER_HELP + " (installed as the default tier "
                            "policy for every serving executor)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--slo-ms", type=float, default=None,
                       help="arm the SLO monitor with this latency target "
                            "(MLPerf Server shape: 1%% error budget)")
    serve.add_argument("--window", type=float, default=None, metavar="SECONDS",
                       help="rolling-window length for windowed metrics "
                            "(default: whole run)")
    serve.add_argument("--interval", type=float, default=0.05, metavar="SECONDS",
                       help="telemetry frame sampling interval in simulated "
                            "seconds (with --telemetry; default 0.05)")
    serve.add_argument("--trace", metavar="FILE",
                       help="write a Perfetto trace with one causally linked "
                            "span tree per query")
    serve.add_argument("--telemetry", metavar="FILE",
                       help="write JSONL telemetry frames (repro top --replay)")
    serve.add_argument("--prometheus", metavar="FILE",
                       help="write the metrics registry as OpenMetrics text")
    serve.add_argument("--harvest", metavar="FILE",
                       help="write the JSONL segment-feature harvest "
                            "(cycle-attribution records)")
    serve.add_argument("--flamegraph", metavar="FILE",
                       help="write collapsed stacks (flamegraph.pl input)")
    top = sub.add_parser(
        "top", help="top-style serving dashboard (live run or frame replay)"
    )
    top.add_argument("model", nargs="?", default=None,
                     help="zoo model key or unique prefix (omit with --replay)")
    top.add_argument("--replay", metavar="FILE",
                     help="render frames from a JSONL file instead of running")
    top.add_argument("--queries", type=int, default=512)
    top.add_argument("--qps", type=float, default=None)
    top.add_argument("--seed", type=int, default=0)
    top.add_argument("--slo-ms", type=float, default=None,
                     help="arm the SLO monitor with this latency target")
    top.add_argument("--window", type=float, default=None, metavar="SECONDS",
                     help="rolling-window length (default: whole run)")
    top.add_argument("--interval", type=float, default=0.05, metavar="SECONDS",
                     help="frame sampling interval in simulated seconds")
    top.add_argument("--no-ansi", action="store_true",
                     help="append frames instead of redrawing in place")
    trace = sub.add_parser(
        "trace", help="run one traced inference and write Perfetto JSON"
    )
    trace.add_argument("model", help="zoo model key or unique prefix, e.g. resnet")
    trace.add_argument("-o", "--output", help="trace path (default <model>.trace.json)")
    trace.add_argument("--queries", type=int, default=128,
                       help="SingleStream queries to trace (default 128)")
    trace.add_argument("--metrics-csv", help="also dump the metrics registry as CSV")
    trace.add_argument("--render", action="store_true",
                       help="print Fig. 10-style text trace of the Ncore tracks")
    trace.add_argument("--seed", type=int, default=0)
    lint = sub.add_parser(
        "lint", help="run the static analyzers over a model or GIR file"
    )
    lint.add_argument(
        "target", help="zoo model key (or unique prefix) or serialized GIR path"
    )
    lint.add_argument("--json", action="store_true",
                      help="emit the report as JSON instead of text")
    lint.add_argument("--graph-only", action="store_true",
                      help="lint only the GIR, skip lowering the Ncore segments")
    lint.add_argument("--suppress", action="append", metavar="RULE",
                      help="drop findings of this rule id (repeatable)")
    lint.add_argument("--verbose", action="store_true",
                      help="include info-severity notes in the text output")
    lint.add_argument("--hazards", action="store_true",
                      help="report only the happens-before hazard rules "
                           "(hazard.*)")
    lint.add_argument("--dot", metavar="FILE",
                      help="write the per-loadable happens-before graphs as "
                           "Graphviz dot")
    lint.add_argument("--seed", type=int, default=0,
                      help="calibration seed for the quantized zoo path")
    compile_cmd = sub.add_parser(
        "compile", help="compile a zoo model or serialized GIR through the staged driver"
    )
    compile_cmd.add_argument(
        "target",
        help="zoo model key (or unique prefix) or path prefix of the .json/.npz pair",
    )
    compile_cmd.add_argument(
        "-O", "--opt-level", choices=["O0", "O1", "O2"], default="O2",
        help="pipeline preset (default O2: full GCL pipeline to fixed point)",
    )
    compile_cmd.add_argument("--no-optimize", action="store_true",
                             help="alias for -O O0")
    compile_cmd.add_argument(
        "--dump-ir", nargs="?", const="all", default=None, metavar="STAGE",
        help="print per-stage IR (diffs between stages; name a stage for its "
             "full snapshot)",
    )
    compile_cmd.add_argument("--no-cache", action="store_true",
                             help="bypass the compile cache")
    compile_cmd.add_argument("--cache-dir", metavar="DIR",
                             help="use (and persist) an on-disk compile cache")
    compile_cmd.add_argument("--seed", type=int, default=0,
                             help="calibration seed for the quantized zoo path")
    explore = sub.add_parser(
        "explore",
        help="sweep design points; report the energy/area Pareto frontier",
    )
    explore.add_argument(
        "--grid", metavar="SPEC",
        help="axes to sweep, e.g. 'slices=8,16,32 clock_ghz=2.0,2.5' "
             "(default: the stock 324-point grid)",
    )
    explore.add_argument(
        "--models", default="mobilenet_v1",
        help="comma-separated zoo models to score (default: mobilenet_v1)",
    )
    explore.add_argument("--json", metavar="PATH",
                         help="write the full result set as JSON")
    explore.add_argument("--csv", metavar="PATH",
                         help="write the per-point table as CSV")
    explore.add_argument("--seed", type=int, default=0,
                         help="seed for the execution bit-equality check")
    explore.add_argument(
        "--execute", type=int, default=0, metavar="N",
        help="run N queries at the best point through the cycle-level "
             "runtime and assert bit-equality with the reference executor",
    )
    explore.add_argument("--top", type=int, default=20,
                         help="show only the best N feasible points (0 = all)")
    run_cmd = sub.add_parser("run", help="run a zoo model or serialized GIR")
    run_cmd.add_argument(
        "path",
        help="zoo model key (or unique prefix) or path prefix of the "
             ".json/.npz pair",
    )
    run_cmd.add_argument("--no-optimize", action="store_true")
    run_cmd.add_argument("--tier", choices=_TIER_CHOICES, default="auto",
                         help=_TIER_HELP)
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument(
        "--sanitize", action="store_true",
        help="verify the run: static hazard rules, output determinism, a "
             "shadow-SRAM-sanitized microkernel and the fastpath oracle",
    )
    return parser


_COMMANDS = {
    "info": _cmd_info,
    "selftest": _cmd_selftest,
    "models": _cmd_models,
    "reproduce": _cmd_reproduce,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "top": _cmd_top,
    "compile": _cmd_compile,
    "run": _cmd_run,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
    "explore": _cmd_explore,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
