"""The CHA SoC substrate: ring bus, memory system and x86 cores.

CHA (section III) consists of eight 64-bit x86 cores on Centaur's CNS
microarchitecture plus Ncore, joined by a 512-bit bidirectional ring bus
with one-cycle hops; a four-channel DDR4-3200 memory controller (102 GB/s);
and a 16 MB shared L3.  Everything runs in a single 2.5 GHz frequency
domain.
"""

from repro.soc.cache import L3Cache
from repro.soc.cha import ChaSoc
from repro.soc.config import CHA_SOC, SocConfig
from repro.soc.memory import DramController
from repro.soc.multisocket import MultiSocketSystem
from repro.soc.ring import RingBus, RingStop, ring_order
from repro.soc.x86 import (
    CNS,
    HASWELL,
    SKYLAKE_SERVER,
    MicroarchSpec,
    X86Core,
)

__all__ = [
    "CHA_SOC",
    "CNS",
    "ChaSoc",
    "DramController",
    "HASWELL",
    "L3Cache",
    "MultiSocketSystem",
    "MicroarchSpec",
    "RingBus",
    "RingStop",
    "SKYLAKE_SERVER",
    "SocConfig",
    "X86Core",
    "ring_order",
]
