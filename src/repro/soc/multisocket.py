"""Multi-socket scale-out.

Section I / II: "The x86 SoC platform can further scale out performance via
multiple sockets, systems, or third-party PCIe accelerators", and the ring
includes multi-socket logic (section III).  Throughput workloads shard
queries across sockets; the model applies a cross-socket efficiency factor
for the shared work distribution (the same reason the 2x CLX 9282 and 2x
NNP-I submissions appear as per-system numbers).
"""

from __future__ import annotations

from dataclasses import dataclass

# Fraction of linear scaling retained per added socket (query dispatch,
# NUMA effects on the shared input stream).
CROSS_SOCKET_EFFICIENCY = 0.97


@dataclass(frozen=True)
class MultiSocketSystem:
    """N CHA sockets serving one inference workload."""

    sockets: int = 2
    cores_per_socket: int = 8
    cross_socket_efficiency: float = CROSS_SOCKET_EFFICIENCY

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError("a system needs at least one socket")
        if self.cores_per_socket < 1:
            raise ValueError("a socket needs at least one core")
        if not 0 < self.cross_socket_efficiency <= 1:
            raise ValueError("cross-socket efficiency must be in (0, 1]")

    def scaling_factor(self) -> float:
        """Effective throughput multiple over one socket."""
        if self.sockets == 1:
            return 1.0
        return self.sockets * self.cross_socket_efficiency ** (self.sockets - 1)

    def offline_throughput_ips(self, single_socket_ips: float) -> float:
        """Offline throughput: queries shard across sockets."""
        return single_socket_ips * self.scaling_factor()

    def single_stream_latency_seconds(self, single_socket_latency: float) -> float:
        """SingleStream latency: one query at a time touches one socket —
        adding sockets does not reduce latency."""
        return single_socket_latency

    def total_x86_cores(self) -> int:
        return self.cores_per_socket * self.sockets

    def run_server(self, system, **kwargs):
        """Server scenario sharded across this system's sockets.

        One dynamic-batching queue feeds ``sockets`` engine-managed Ncore
        executors; the cross-socket efficiency degrades each socket's
        service rate so the sustained QPS lands on ``scaling_factor()``
        times the single-socket number (modulo queueing effects).
        """
        from repro.perf.serving import run_server

        kwargs.setdefault("socket_efficiency", self.cross_socket_efficiency)
        return run_server(system, sockets=self.sockets, **kwargs)
