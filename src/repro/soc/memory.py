"""CHA's memory controller: four channels of DDR4-3200.

Section III: "The memory controller supports four channels of DDR4-3200
DRAM, providing 102 GB/s peak theoretical throughput."  The controller
wraps a :class:`repro.ncore.LinearMemory` so that Ncore's DMA engines, the
x86 cores and the runtime all see the same backing store.
"""

from __future__ import annotations

from repro.ncore.dma import LinearMemory
from repro.soc.config import BYTES_PER_DDR_TRANSFER, SocConfig

# DDR4-3200: 3200 MT/s x 8 bytes per channel.
BYTES_PER_CHANNEL_PER_SECOND = 3200e6 * BYTES_PER_DDR_TRANSFER


class DramController(LinearMemory):
    """The four-channel DDR4-3200 controller as a LinearMemory.

    Exposes the DMA-facing bandwidth/latency interface in CHA clock cycles
    (the whole SoC runs in a single frequency domain), plus SI-unit helpers
    for the performance models.
    """

    def __init__(
        self,
        size: int = 32 << 30,          # the test platform had 32 GB (Table IV)
        channels: int = 4,
        clock_hz: float = 2.5e9,
        latency_ns: float = 30.0,
        transfer_rate: float = 3200e6,  # transfers/second per channel
    ) -> None:
        self.channels = channels
        self.clock_hz = clock_hz
        self.transfer_rate = transfer_rate
        peak = channels * transfer_rate * BYTES_PER_DDR_TRANSFER
        super().__init__(
            size,
            bandwidth_bytes_per_cycle=peak / clock_hz,
            latency_cycles=int(round(latency_ns * 1e-9 * clock_hz)),
        )

    @classmethod
    def from_config(cls, config: SocConfig) -> "DramController":
        return cls(
            size=config.dram_bytes,
            channels=config.ddr_channels,
            clock_hz=config.clock_hz,
            latency_ns=config.dram_latency_ns,
            transfer_rate=config.ddr_transfer_rate,
        )

    @property
    def peak_bandwidth(self) -> float:
        """Peak theoretical throughput in bytes/second (102.4 GB/s in CHA)."""
        return self.channels * self.transfer_rate * BYTES_PER_DDR_TRANSFER

    def stream_seconds(self, num_bytes: int, efficiency: float = 0.8) -> float:
        """Time to stream a large transfer at a sustained efficiency."""
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        return num_bytes / (self.peak_bandwidth * efficiency)
