"""The CHA SoC: eight CNS cores + Ncore on one ring (Fig. 1).

Assembles the substrate pieces into the platform the paper evaluates
(Table IV): the ring bus, the four-channel DDR4 controller, the 16 MB
shared L3, eight x86 cores, and the Ncore coprocessor wired so that

- its DMA engines reach system DRAM (optionally through the L3),
- it appears in PCI enumeration as a coprocessor-class device, and
- x86 cores reach its RAMs and registers through the ring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ncore import Ncore, NcoreConfig, NcorePciDevice
from repro.soc.cache import L3Cache
from repro.soc.config import SocConfig
from repro.soc.memory import DramController
from repro.soc.ring import RingBus, RingStop
from repro.soc.x86 import CNS, X86Core

NUM_CORES = 8

# Die facts from section III / IV-B, recorded for reporting.
DIE_AREA_MM2 = 200.0
NCORE_AREA_MM2 = 34.4
PROCESS = "TSMC 16 nm FFC"


@dataclass(frozen=True)
class PciFunction:
    """One enumerated PCI function."""

    bus: int
    device: int
    function: int
    vendor_id: int
    device_id: int
    class_code: int


class ChaSoc:
    """One CHA socket."""

    def __init__(
        self,
        ncore_config: NcoreConfig | None = None,
        clock_hz: float | None = None,
        soc_config: SocConfig | None = None,
    ) -> None:
        if soc_config is None:
            soc_config = SocConfig(clock_hz=clock_hz if clock_hz is not None else 2.5e9)
        elif clock_hz is not None and clock_hz != soc_config.clock_hz:
            raise ValueError("pass the clock through soc_config, not both ways")
        self.soc_config = soc_config
        self.clock_hz = soc_config.clock_hz
        self.ring = RingBus.from_config(soc_config)
        self.dram = DramController.from_config(soc_config)
        self.l3 = L3Cache(
            size_bytes=soc_config.l3_bytes, ways=soc_config.l3_ways, memory=self.dram
        )
        config = ncore_config or NcoreConfig(clock_hz=self.clock_hz)
        self.ncore = Ncore(config=config, memory=self.dram)
        # Wire the coherent DMA-through-L3 path (section IV-A).
        self.ncore.dma_read.l3 = self.l3
        self.cores = [
            X86Core(CNS, clock_hz=self.clock_hz) for _ in range(soc_config.x86_cores)
        ]
        self.ncore_pci = NcorePciDevice(sram_bytes=config.total_ram_bytes)
        self._mmio_assigned = False

    @property
    def ncore_area_fraction(self) -> float:
        """Ncore's share of the die (17% in CHA)."""
        return NCORE_AREA_MM2 / DIE_AREA_MM2

    def enumerate_pci(self) -> list[PciFunction]:
        """Standard PCI enumeration; Ncore shows up as a coprocessor.

        Also performs BAR assignment, which is what makes the Ncore MMIO
        windows reachable from the cores.
        """
        if not self._mmio_assigned:
            self.ncore_pci.assign_bars(0xE000_0000)
            self._mmio_assigned = True
        return [
            PciFunction(
                bus=0,
                device=16,
                function=0,
                vendor_id=self.ncore_pci.vendor_id,
                device_id=self.ncore_pci.device_id,
                class_code=self.ncore_pci.class_code,
            )
        ]

    def core_to_ncore_seconds(self, num_bytes: int, core_index: int = 0) -> float:
        """Latency of an x86 access to Ncore over the ring."""
        return self.ring.transfer_seconds(f"core{core_index}", RingStop.NCORE, num_bytes)

    def ncore_to_dram_bandwidth(self) -> float:
        """Sustained Ncore DMA bandwidth: min of ring direction and DRAM."""
        return min(self.ring.bandwidth_per_direction, self.dram.peak_bandwidth)
