"""CHA's shared L3 cache.

Section III/IV-A: 16 MB of shared L3 (2 MB per core).  Ncore "has the
ability to use DMA to read CHA's shared L3 caches, which will subsequently
retrieve the data from system DRAM if not present in the L3.  Ncore reads
from L3 are coherent, while Ncore internal memory is not coherent with the
SoC memory system."

The model is a set-associative tag array over 64-byte lines with LRU
replacement; data always lives in the backing DRAM (the cache tracks
presence and modified lines for the coherent-read path).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.ncore.dma import LinearMemory
from repro.obs.metrics import get_metrics

LINE_BYTES = 64


class L3Cache:
    """Shared L3 tag model with a coherent read path for Ncore DMA."""

    def __init__(
        self,
        size_bytes: int = 16 * 1024 * 1024,
        ways: int = 16,
        memory: LinearMemory | None = None,
        hit_latency_cycles: int = 40,
    ) -> None:
        if size_bytes % (ways * LINE_BYTES):
            raise ValueError("cache size must divide evenly into ways and lines")
        self.size_bytes = size_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * LINE_BYTES)
        self.memory = memory
        self.hit_latency_cycles = hit_latency_cycles
        # Each set is an OrderedDict tag -> dirty payload (None when clean);
        # insertion order is LRU order (oldest first).
        self._sets: list[OrderedDict[int, bytes | None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // LINE_BYTES
        return line % self.num_sets, line // self.num_sets

    def _touch(self, set_index: int, tag: int) -> None:
        self._sets[set_index].move_to_end(tag)

    def _install(self, set_index: int, tag: int, payload: bytes | None = None) -> None:
        ways = self._sets[set_index]
        if tag in ways:
            if payload is not None:
                ways[tag] = payload
            self._touch(set_index, tag)
            return
        if len(ways) >= self.ways:
            evicted_tag, dirty = ways.popitem(last=False)
            if dirty is not None:
                self.writebacks += 1
                if self.memory is not None:
                    line_addr = (evicted_tag * self.num_sets + set_index) * LINE_BYTES
                    self.memory.write(line_addr, dirty)
        ways[tag] = payload

    def access(self, addr: int, write: bool = False, payload: bytes | None = None) -> bool:
        """One CPU-side line access; returns True on hit."""
        set_index, tag = self._locate(addr)
        ways = self._sets[set_index]
        hit = tag in ways
        if hit:
            self.hits += 1
            self._touch(set_index, tag)
            if write:
                ways[tag] = payload if payload is not None else ways[tag]
        else:
            self.misses += 1
            self._install(set_index, tag, payload if write else None)
        return hit

    def write_line(self, addr: int, payload: bytes) -> None:
        """CPU-side store of a full line (leaves the line dirty in L3)."""
        if len(payload) != LINE_BYTES:
            raise ValueError(f"L3 lines are {LINE_BYTES} bytes")
        aligned = addr - addr % LINE_BYTES
        set_index, tag = self._locate(aligned)
        self._install(set_index, tag, payload)
        self._touch(set_index, tag)

    def coherent_read(self, addr: int, length: int, dram_payload: bytes) -> bytes:
        """Ncore's DMA-through-L3 path.

        Returns ``dram_payload`` with any dirty cached lines overlaid, so
        the read observes CPU stores that have not yet reached DRAM —
        this is what makes "Ncore reads from L3 coherent".  Lines touched
        by the read are installed (the read allocates, warming the cache).
        """
        out = bytearray(dram_payload)
        hits_before, misses_before = self.hits, self.misses
        start_line = addr // LINE_BYTES
        end_line = (addr + length - 1) // LINE_BYTES
        for line in range(start_line, end_line + 1):
            line_addr = line * LINE_BYTES
            set_index, tag = self._locate(line_addr)
            ways = self._sets[set_index]
            if tag in ways:
                self.hits += 1
                self._touch(set_index, tag)
                dirty = ways[tag]
                if dirty is not None:
                    lo = max(line_addr, addr)
                    hi = min(line_addr + LINE_BYTES, addr + length)
                    out[lo - addr : hi - addr] = dirty[lo - line_addr : hi - line_addr]
            else:
                self.misses += 1
                self._install(set_index, tag)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("l3.coherent_reads").inc()
            metrics.counter("l3.hits").inc(self.hits - hits_before)
            metrics.counter("l3.misses").inc(self.misses - misses_before)
        return bytes(out)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
