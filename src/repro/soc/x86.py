"""The CNS x86 core model (and the Table III comparison points).

CHA's eight 64-bit x86 cores use Centaur's CNS microarchitecture.  For the
performance evaluation only two aspects of the cores matter:

- their peak arithmetic throughput (Table II: one CNS core at 2.5 GHz peaks
  at 106 GOPS for 8-bit, 80 GOPS for bfloat16 and FP32), and
- the cache/buffer geometry compared against Intel's Haswell and Skylake
  Server (Table III).

The :class:`X86Core` exposes a cost model over abstract work items (ops and
bytes moved), which the runtime uses to account for the x86 portion of each
workload (preprocessing, postprocessing, framework overhead — Table IX).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtypes import NcoreDType


@dataclass(frozen=True)
class MicroarchSpec:
    """Table III: CNS vs Haswell vs Skylake Server."""

    name: str
    l1i_kb: int
    l1i_ways: int
    l1d_kb: int
    l1d_ways: int
    l2_kb: int
    l2_ways: int
    l3_per_core_mb: float
    load_buffer: int
    store_buffer: int
    rob_size: int
    scheduler_size: int


CNS = MicroarchSpec(
    name="CNS",
    l1i_kb=32, l1i_ways=8,
    l1d_kb=32, l1d_ways=8,
    l2_kb=256, l2_ways=16,
    l3_per_core_mb=2.0,
    load_buffer=72, store_buffer=44,
    rob_size=192, scheduler_size=64,
)

HASWELL = MicroarchSpec(
    name="Haswell",
    l1i_kb=32, l1i_ways=8,
    l1d_kb=32, l1d_ways=8,
    l2_kb=256, l2_ways=8,
    l3_per_core_mb=2.0,
    load_buffer=72, store_buffer=42,
    rob_size=192, scheduler_size=60,
)

SKYLAKE_SERVER = MicroarchSpec(
    name="Skylake Server",
    l1i_kb=32, l1i_ways=8,
    l1d_kb=32, l1d_ways=8,
    l2_kb=1024, l2_ways=16,
    l3_per_core_mb=1.375,
    load_buffer=72, store_buffer=56,
    rob_size=224, scheduler_size=97,
)

# Table II peak throughput for one CNS core at 2.5 GHz, in ops/second.
_PEAK_OPS = {
    NcoreDType.INT8: 106e9,
    NcoreDType.UINT8: 106e9,
    NcoreDType.INT16: 80e9,   # 16-bit throughput tracks the wider datapath
    NcoreDType.BF16: 80e9,
}
PEAK_FP32_OPS = 80e9


class X86Core:
    """One CNS core with a simple roofline-style cost model.

    Real code never reaches vector peak; ``efficiency`` captures sustained
    utilisation for the AVX-512 kernels TensorFlow-Lite uses on the
    non-delegated subgraphs (section V-A).  Memory-bound work is limited by
    ``memory_bandwidth`` (a single core cannot saturate all four DDR
    channels).
    """

    def __init__(
        self,
        spec: MicroarchSpec = CNS,
        clock_hz: float = 2.5e9,
        efficiency: float = 0.35,
        memory_bandwidth: float = 20e9,
    ) -> None:
        self.spec = spec
        self.clock_hz = clock_hz
        self.efficiency = efficiency
        self.memory_bandwidth = memory_bandwidth
        self.busy_seconds = 0.0

    def peak_ops(self, dtype: NcoreDType | None = None) -> float:
        """Peak ops/second at this clock (Table II row '1x CNS x86')."""
        base = PEAK_FP32_OPS if dtype is None else _PEAK_OPS[dtype]
        return base * (self.clock_hz / 2.5e9)

    def task_seconds(
        self,
        ops: float = 0.0,
        bytes_moved: float = 0.0,
        dtype: NcoreDType | None = None,
        fixed_seconds: float = 0.0,
    ) -> float:
        """Roofline estimate for one work item on this core.

        Compute and memory phases are taken as non-overlapping (pre/post
        processing code is short, serial loops), plus any fixed software
        overhead (framework dispatch, benchmark harness).
        """
        compute = ops / (self.peak_ops(dtype) * self.efficiency) if ops else 0.0
        memory = bytes_moved / self.memory_bandwidth if bytes_moved else 0.0
        return fixed_seconds + compute + memory

    def run_task(self, **kwargs) -> float:
        """Account a task against this core; returns its duration."""
        seconds = self.task_seconds(**kwargs)
        self.busy_seconds += seconds
        return seconds
