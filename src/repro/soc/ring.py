"""CHA's bidirectional ring bus.

Section III: the ring is 512 bits wide in each direction with 1-cycle
latency between ring stops; at 2.5 GHz each direction provides up to
160 GB/s (320 GB/s combined).  Ring stops exist for each x86 core, Ncore,
I/O, the memory controllers, and multi-socket logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.obs.metrics import get_metrics
from repro.soc.config import SocConfig


class RingStop(enum.Enum):
    """The agents attached to CHA's ring."""

    CORE0 = "core0"
    CORE1 = "core1"
    CORE2 = "core2"
    CORE3 = "core3"
    CORE4 = "core4"
    CORE5 = "core5"
    CORE6 = "core6"
    CORE7 = "core7"
    NCORE = "ncore"
    IO = "io"
    MEMORY = "memory"
    MULTI_SOCKET = "multi_socket"


# Physical ordering of stops around the ring (a modelling choice consistent
# with the die photo: cores on both sides, Ncore adjacent to the memory
# controller and I/O).
RING_ORDER = [
    RingStop.CORE0,
    RingStop.CORE1,
    RingStop.CORE2,
    RingStop.CORE3,
    RingStop.MEMORY,
    RingStop.NCORE,
    RingStop.IO,
    RingStop.MULTI_SOCKET,
    RingStop.CORE4,
    RingStop.CORE5,
    RingStop.CORE6,
    RingStop.CORE7,
]


def ring_order(num_cores: int = 8) -> tuple[str, ...]:
    """Stop order (as stop names) for a socket with ``num_cores`` cores.

    Generalizes ``RING_ORDER`` to non-CHA core counts: the first half of
    the cores sit on one side of the shared agents, the rest on the other,
    with Ncore still adjacent to the memory controller.
    """
    if num_cores < 1:
        raise ValueError("the ring needs at least one core stop")
    cores = [f"core{i}" for i in range(num_cores)]
    half = num_cores // 2
    shared = ["memory", "ncore", "io", "multi_socket"]
    return tuple(cores[:half] + shared + cores[half:])


def _stop_name(stop: "RingStop | str") -> str:
    return stop.value if isinstance(stop, RingStop) else stop


@dataclass
class RingBus:
    """Timing model of the bidirectional ring."""

    width_bits: int = 512
    clock_hz: float = 2.5e9
    hop_cycles: int = 1
    order: tuple[str, ...] = field(default_factory=ring_order)

    @classmethod
    def from_config(cls, config: SocConfig) -> "RingBus":
        return cls(
            width_bits=config.ring_width_bits,
            clock_hz=config.clock_hz,
            hop_cycles=config.ring_hop_cycles,
            order=ring_order(config.x86_cores),
        )

    @property
    def width_bytes(self) -> int:
        return self.width_bits // 8

    @property
    def bandwidth_per_direction(self) -> float:
        """Peak bytes/second in one direction (160 GB/s in CHA)."""
        return self.width_bytes * self.clock_hz

    @property
    def combined_bandwidth(self) -> float:
        """Peak bytes/second across both directions (320 GB/s in CHA)."""
        return 2 * self.bandwidth_per_direction

    def hops(self, src: "RingStop | str", dst: "RingStop | str") -> int:
        """Fewest ring stops between two agents (the ring is bidirectional,
        so traffic takes the shorter way around)."""
        a = self.order.index(_stop_name(src))
        b = self.order.index(_stop_name(dst))
        distance = abs(a - b)
        return min(distance, len(self.order) - distance)

    def transfer_cycles(self, src: "RingStop | str", dst: "RingStop | str", num_bytes: int) -> int:
        """Cycles to move a message: per-hop latency plus serialisation."""
        latency = self.hops(src, dst) * self.hop_cycles
        serialisation = -(-num_bytes // self.width_bytes)  # ceil division
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("ring.messages").inc()
            metrics.counter("ring.bytes", unit="B").inc(num_bytes)
            metrics.counter("ring.hop_cycles", unit="cycles").inc(latency)
            # Serialisation cycles are the stop-occupancy proxy: how long
            # the message holds its injection slot.
            metrics.counter("ring.occupancy_cycles", unit="cycles").inc(serialisation)
        return latency + serialisation

    def transfer_seconds(self, src: "RingStop | str", dst: "RingStop | str", num_bytes: int) -> float:
        return self.transfer_cycles(src, dst, num_bytes) / self.clock_hz
