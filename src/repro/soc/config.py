"""SoC-level configuration parameters.

The companion of :class:`repro.ncore.NcoreConfig` one level up: where that
dataclass captures Ncore's breadth (slices) and height (SRAM rows), this one
captures the CHA substrate the coprocessor plugs into — ring width and hop
latency, DDR channel count and transfer rate, L3 geometry, x86 core count
and the shared clock.  All defaults are the shipped CHA point (sections III
and IV, Table IV); ``repro explore`` sweeps these knobs alongside the Ncore
ones to trace perf/power/area frontiers.

Like ``NcoreConfig``, instances are frozen and hashable so they can key
caches and sweep results.
"""

from __future__ import annotations

from dataclasses import dataclass

# DDR4 moves 8 bytes per transfer per channel (64-bit channels).
BYTES_PER_DDR_TRANSFER = 8


@dataclass(frozen=True)
class SocConfig:
    """Architectural parameters of one CHA socket (minus Ncore)."""

    ring_width_bits: int = 512           # per direction (section III)
    ring_hop_cycles: int = 1             # one-cycle stop-to-stop latency
    ddr_channels: int = 4                # four channels of DDR4-3200
    ddr_transfer_rate: float = 3200e6    # transfers/second per channel (DDR4-3200)
    dram_bytes: int = 32 << 30           # the test platform's 32 GB (Table IV)
    dram_latency_ns: float = 30.0
    l3_bytes: int = 16 << 20             # 16 MB shared L3
    l3_ways: int = 16
    x86_cores: int = 8                   # CNS cores per socket
    clock_hz: float = 2.5e9              # single SoC frequency domain
    cross_socket_efficiency: float = 0.97

    def __post_init__(self) -> None:
        if self.ring_width_bits < 8 or self.ring_width_bits % 8:
            raise ValueError("ring width must be a positive multiple of 8 bits")
        if self.ddr_channels < 1:
            raise ValueError("the memory controller needs at least one channel")
        if self.x86_cores < 1:
            raise ValueError("CHA needs at least one x86 core")
        if not 0 < self.cross_socket_efficiency <= 1:
            raise ValueError("cross-socket efficiency must be in (0, 1]")

    @property
    def ring_width_bytes(self) -> int:
        return self.ring_width_bits // 8

    @property
    def ring_bandwidth_per_direction(self) -> float:
        """Peak bytes/second in one ring direction (160 GB/s in CHA)."""
        return self.ring_width_bytes * self.clock_hz

    @property
    def ring_stops(self) -> int:
        """Agents on the ring: the cores plus Ncore, I/O, the memory
        controller and the multi-socket logic."""
        return self.x86_cores + 4

    @property
    def ddr_bandwidth(self) -> float:
        """Peak theoretical DRAM throughput (102.4 GB/s in CHA)."""
        return self.ddr_channels * self.ddr_transfer_rate * BYTES_PER_DDR_TRANSFER

    @property
    def dma_bytes_per_cycle(self) -> float:
        """Sustained Ncore DMA rate: the min of one ring direction and the
        DRAM controller, expressed per SoC clock (40.96 B/cycle in CHA)."""
        return min(self.ring_bandwidth_per_direction, self.ddr_bandwidth) / self.clock_hz


# The shipped CHA configuration.
CHA_SOC = SocConfig()
