"""``repro.analyze``: the "nlint" static-analysis pass stack.

Compile-time verification of every artifact the toolchain produces — GIR
graphs, Ncore Loadables and assembled instruction programs — so an illegal
DMA schedule or out-of-bounds scratchpad access is rejected with a
structured :class:`Diagnostic` instead of hanging silicon (or the
simulator) mid-run.  The lowering pipeline and the delegate gate on these
analyzers in strict mode; ``repro lint`` runs the same stack from the CLI.

See ``docs/static-analysis.md`` for the rule catalog.
"""

from repro.analyze.diagnostics import (
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    Location,
    Rule,
    RULES,
    Severity,
    enforce,
)
from repro.analyze.gir_rules import analyze_graph
from repro.analyze.hazard import (
    HazardGraph,
    analyze_loadable_hazards,
    analyze_program_hazards,
    build_loadable_hazard_graph,
    build_program_hazard_graph,
    render_dot,
)
from repro.analyze.loadable_rules import analyze_compiled_model, analyze_loadable
from repro.analyze.program_rules import analyze_program
from repro.analyze.render import render_json, render_text

from repro.graph.loadable import CompiledModel
from repro.ncore.config import NcoreConfig


def analyze_model(
    model: CompiledModel,
    config: NcoreConfig | None = None,
    suppress: tuple[str, ...] = (),
) -> AnalysisReport:
    """The full stack over a compiled model: graph, segments and loadables."""
    report = analyze_graph(model.graph, segments=model.segments, suppress=suppress)
    report.merge(analyze_compiled_model(model, config=config, suppress=suppress))
    return report


__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "Diagnostic",
    "Location",
    "Rule",
    "RULES",
    "Severity",
    "enforce",
    "HazardGraph",
    "analyze_graph",
    "analyze_loadable",
    "analyze_loadable_hazards",
    "analyze_compiled_model",
    "analyze_model",
    "analyze_program",
    "analyze_program_hazards",
    "build_loadable_hazard_graph",
    "build_program_hazard_graph",
    "render_dot",
    "render_json",
    "render_text",
]
