"""Happens-before hazard analyzer over DMA schedules and compute order.

The Loadable verifier (``loadable_rules``) checks pairwise prefetch timing;
this module builds the *whole-schedule* happens-before graph — DMA
transfers per engine, DMA_WAIT synchronization edges, kernel/segment
execution order — and runs interval analysis over SRAM row ranges to find
the orderings the schedule never established: RAW (a read may observe an
in-flight DMA write), WAR (a write lands in rows still being read out),
WAW (two unordered writes to the same rows), dead transfers nothing ever
consumes, and cycles in the happens-before relation itself.

Two entry points share the rule set and the :class:`HazardGraph` model:

- :func:`analyze_loadable_hazards` works on a compiled
  :class:`~repro.graph.loadable.NcoreLoadable` (prefetch schedule versus
  kernel order, rows from the memory plan), and
- :func:`analyze_program_hazards` works on an assembled instruction
  program plus its DMA descriptor table, with the same abstract
  address-register interpretation as ``program_rules``.

Findings are real orderings the schedule failed to establish; statically
unknowable addresses are simply not reported (the runtime shadow-SRAM
sanitizer in :mod:`repro.sanitize` covers those).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.gir import Graph
from repro.graph.loadable import NcoreLoadable
from repro.graph.planner import Prefetch, RowRange
from repro.isa.instruction import (
    DMAOp,
    Instruction,
    OutOpcode,
    SeqOp,
    SeqOpcode,
)
from repro.isa.operands import NUM_ADDR_REGS, OperandKind, RAM_KINDS
from repro.ncore.config import NcoreConfig
from repro.obs.metrics import get_metrics

from repro.analyze.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    diag,
    register_rule,
)

RAW = register_rule(
    "hazard.raw", Severity.ERROR, "read may observe an in-flight DMA write",
    "A kernel or DMA read targets SRAM rows a DMA transfer is still "
    "writing, with no DMA_WAIT / completion edge ordering the two; the "
    "reader can observe half-written rows.",
)
WAR = register_rule(
    "hazard.war", Severity.ERROR, "write overwrites rows still being read",
    "A DMA or compute write lands in SRAM rows whose previous contents a "
    "kernel or an outbound DMA still needs, with no happens-before edge "
    "ordering the write after the last read.",
)
WAW = register_rule(
    "hazard.waw", Severity.ERROR, "unordered overlapping writes",
    "Two writes to overlapping SRAM rows have no happens-before ordering "
    "(e.g. a compute store races an in-flight DMA fill); the surviving "
    "bytes depend on transfer timing.",
)
DEAD_WRITE = register_rule(
    "hazard.dead-write", Severity.WARNING, "DMA transfer nothing consumes",
    "A DMA transfer stages SRAM rows that no kernel, store or outbound "
    "transfer ever reads before the program ends — a dead descriptor, "
    "almost certainly a scheduling bug.",
)
HB_CYCLE = register_rule(
    "hazard.hb-cycle", Severity.ERROR, "happens-before graph has a cycle",
    "The combined execution-order / DMA-completion edges form a cycle "
    "(e.g. a prefetch issued after the kernel that needs its data); no "
    "schedule can satisfy it.",
)
UNWAITED_DMA = register_rule(
    "hazard.unwaited-dma", Severity.WARNING, "DMA started but never awaited",
    "A transfer is still logically in flight when the program halts; the "
    "host may read the target buffer (or reload the scratchpad) before "
    "the engine finishes.",
)


# ----------------------------------------------------------------------
# The happens-before graph
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HazardNode:
    """One event of the happens-before graph.

    ``kind`` is ``kernel`` / ``compute`` / ``dma`` / ``wait`` / ``halt``;
    ``ram`` names the SRAM the event touches (``data`` / ``weight`` or
    empty) and ``rows`` the row interval, when statically known.
    """

    id: str
    kind: str
    label: str
    ram: str = ""
    rows: RowRange | None = None


@dataclass
class HazardGraph:
    """Happens-before events and edges for one artifact.

    Edge kinds: ``program`` (sequencer / kernel order), ``engine`` (DMA
    engine serialization), ``wait`` (DMA_WAIT retires a transfer) and
    ``data`` (a transfer's completion feeds the kernel that needs it).
    """

    name: str = "hazards"
    nodes: list[HazardNode] = field(default_factory=list)
    edges: list[tuple[str, str, str]] = field(default_factory=list)
    _ids: set[str] = field(default_factory=set)

    def add_node(
        self,
        id: str,
        kind: str,
        label: str,
        ram: str = "",
        rows: RowRange | None = None,
    ) -> str:
        if id not in self._ids:
            self._ids.add(id)
            self.nodes.append(HazardNode(id, kind, label, ram, rows))
        return id

    def add_edge(self, src: str, dst: str, kind: str = "program") -> None:
        edge = (src, dst, kind)
        if edge not in self.edges:
            self.edges.append(edge)

    def find_cycle(self) -> list[str] | None:
        """One cycle of node ids, or ``None`` — iterative colored DFS."""
        successors: dict[str, list[str]] = {n.id: [] for n in self.nodes}
        for src, dst, _ in self.edges:
            if src in successors and dst in successors:
                successors[src].append(dst)
        WHITE, GRAY, BLACK = 0, 1, 2
        color = dict.fromkeys(successors, WHITE)
        for root in successors:
            if color[root] != WHITE:
                continue
            stack: list[tuple[str, int]] = [(root, 0)]
            path: list[str] = []
            while stack:
                node, edge_index = stack.pop()
                if edge_index == 0:
                    color[node] = GRAY
                    path.append(node)
                if edge_index < len(successors[node]):
                    stack.append((node, edge_index + 1))
                    child = successors[node][edge_index]
                    if color[child] == GRAY:
                        return path[path.index(child):] + [child]
                    if color[child] == WHITE:
                        stack.append((child, 0))
                else:
                    color[node] = BLACK
                    path.pop()
        return None

    def to_dot(self, *, indent: str = "  ", cluster: int | None = None) -> str:
        """Graphviz rendering; standalone digraph or one cluster body."""
        shapes = {"kernel": "box", "compute": "box", "dma": "ellipse",
                  "wait": "diamond", "halt": "octagon"}
        styles = {"program": "solid", "engine": "dashed",
                  "wait": "bold", "data": "dotted"}
        prefix = f"c{cluster}_" if cluster is not None else ""
        lines: list[str] = []
        if cluster is None:
            lines.append(f'digraph "{self.name}" {{')
            lines.append(f"{indent}rankdir=TB;")
        for node in self.nodes:
            label = node.label
            if node.rows is not None:
                label += f"\\n{node.ram} rows [{node.rows.start}, {node.rows.end})"
            shape = shapes.get(node.kind, "box")
            lines.append(
                f'{indent}"{prefix}{node.id}" [label="{label}", shape={shape}];'
            )
        for src, dst, kind in self.edges:
            style = styles.get(kind, "solid")
            lines.append(
                f'{indent}"{prefix}{src}" -> "{prefix}{dst}" '
                f'[style={style}, label="{kind}"];'
            )
        if cluster is None:
            lines.append("}")
        return "\n".join(lines)


def render_dot(graphs: list[HazardGraph], name: str = "hazards") -> str:
    """Many per-loadable graphs as one digraph with subgraph clusters."""
    lines = [f'digraph "{name}" {{', "  rankdir=TB;"]
    for index, graph in enumerate(graphs):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{graph.name}";')
        lines.append(graph.to_dot(indent="    ", cluster=index))
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _overlap(a: RowRange, b: RowRange) -> bool:
    return a.start < b.end and b.start < a.end


# ----------------------------------------------------------------------
# Loadable-level analysis: prefetch schedule versus kernel order
# ----------------------------------------------------------------------


def _base(tensor: str) -> str:
    return tensor.split("#chunk", 1)[0]


def _landing_rows(
    loadable: NcoreLoadable, position: int, prefetch: Prefetch,
    config: NcoreConfig | None,
) -> RowRange | None:
    """The rows prefetch ``position`` actually writes.

    The streaming planner double-buffers: transfer *i* lands at buffer
    half ``i % 2`` (``weight_allocs`` records only the first chunk's
    placement), every chunk of one tensor being the same height.
    """
    plan = loadable.memory_plan
    alloc = plan.weight_allocs.get(_base(prefetch.tensor))
    if alloc is None:
        return None
    if plan.weights_pinned:
        return alloc
    half = (config or NcoreConfig()).sram_rows // 2
    return RowRange(half * (position % 2), alloc.rows)


def build_loadable_hazard_graph(
    graph: Graph, loadable: NcoreLoadable, config: NcoreConfig | None = None
) -> HazardGraph:
    """The happens-before graph of one compiled segment.

    Kernel nodes in segment order; one DMA node per scheduled prefetch.
    A prefetch starts after ``kernel[issue_at - 1]`` (program edge),
    completes before ``kernel[needed_at]`` (data edge — the NKL's
    DMA_WAIT placement), and the single read engine serializes
    consecutive transfers (engine edges).
    """
    hb = HazardGraph(name=loadable.name)
    segment = loadable.segment
    plan = loadable.memory_plan
    previous: str | None = None
    for index, node in enumerate(segment.nodes):
        node_id = hb.add_node(f"k{index}", "kernel", f"{node.name} ({node.op})")
        if previous is not None:
            hb.add_edge(previous, node_id, "program")
        previous = node_id
    previous_dma: str | None = None
    for position, prefetch in enumerate(plan.prefetches):
        rows = _landing_rows(loadable, position, prefetch, config)
        dma_id = hb.add_node(
            f"p{position}", "dma", f"prefetch {prefetch.tensor}",
            ram="weight", rows=rows,
        )
        if previous_dma is not None:
            hb.add_edge(previous_dma, dma_id, "engine")
        previous_dma = dma_id
        if 0 < prefetch.issue_at_node <= len(segment.nodes):
            hb.add_edge(f"k{prefetch.issue_at_node - 1}", dma_id, "program")
        if 0 <= prefetch.needed_at_node < len(segment.nodes):
            hb.add_edge(dma_id, f"k{prefetch.needed_at_node}", "data")
    return hb


def analyze_loadable_hazards(
    graph: Graph,
    loadable: NcoreLoadable,
    config: NcoreConfig | None = None,
) -> list[Diagnostic]:
    """Whole-schedule hazard analysis over one compiled segment."""
    findings: list[Diagnostic] = []
    segment = loadable.segment
    plan = loadable.memory_plan
    num_nodes = len(segment.nodes)
    hb = build_loadable_hazard_graph(graph, loadable, config)
    cycle = hb.find_cycle()
    if cycle is not None:
        findings.append(diag(
            HB_CYCLE,
            "the happens-before graph has a cycle: " + " -> ".join(cycle),
            artifact=loadable.name, element="schedule",
            hint="a prefetch is ordered after the kernel that consumes it",
        ))

    # First consumer of every constant, and the set of consumed tensors.
    first_consumer: dict[str, int] = {}
    consumed_by_nodes: set[str] = set()
    for index, node in enumerate(segment.nodes):
        for tensor_name in node.inputs:
            base = _base(tensor_name)
            consumed_by_nodes.add(base)
            first_consumer.setdefault(base, index)

    windows: list[tuple[int, Prefetch, RowRange]] = []
    for position, prefetch in enumerate(plan.prefetches):
        base = _base(prefetch.tensor)
        rows = _landing_rows(loadable, position, prefetch, config)
        if base not in consumed_by_nodes:
            findings.append(diag(
                DEAD_WRITE,
                f"prefetch of {prefetch.tensor!r} stages weight rows no "
                "kernel of the segment ever reads",
                artifact=loadable.name, element=prefetch.tensor, index=position,
            ))
        if not (0 <= prefetch.issue_at_node < num_nodes
                and 0 <= prefetch.needed_at_node < num_nodes):
            continue  # ldb.prefetch-range reported the bad indices
        # RAW: the data edge lands after the first consumer — that kernel
        # reads rows the engine may still be writing.
        consumer = first_consumer.get(base)
        if consumer is not None and consumer < prefetch.needed_at_node:
            findings.append(diag(
                RAW,
                f"kernel {segment.nodes[consumer].name!r} (node {consumer}) "
                f"reads {base!r} but its prefetch completes only before "
                f"node {prefetch.needed_at_node}",
                artifact=loadable.name, element=prefetch.tensor, index=position,
                hint="needed_at_node must not exceed the first consumer",
            ))
        if rows is None:
            continue  # ldb.missing-weights reports the unplaced base tensor
        windows.append((position, prefetch, rows))

    # WAR across the FIFO: transfer B (later in queue) overwrites rows of
    # transfer A whose data a *later* kernel still needs.  Same-node and
    # in-order consumption are serialized by the queue + the NKL's
    # in-kernel chunk waits; only a needed-order inversion races.
    # (ldb.dma-hazard reports the too-early-issue case; prefetch-vs-
    # prefetch WAW cannot happen at this level — one engine, one queue.)
    for i, (pos_a, pf_a, rows_a) in enumerate(windows):
        for pos_b, pf_b, rows_b in windows[i + 1:]:
            if _base(pf_a.tensor) == _base(pf_b.tensor):
                continue  # chunks of one layer are serialized by the NKL
            if not _overlap(rows_a, rows_b):
                continue
            if pf_a.needed_at_node > pf_b.needed_at_node:
                findings.append(diag(
                    WAR,
                    f"prefetch of {pf_b.tensor!r} (queue slot {pos_b}, "
                    f"needed at node {pf_b.needed_at_node}) overwrites rows "
                    f"[{max(rows_a.start, rows_b.start)}, "
                    f"{min(rows_a.end, rows_b.end)}) of {pf_a.tensor!r} "
                    f"(queue slot {pos_a}), which kernel "
                    f"{pf_a.needed_at_node} still reads afterwards",
                    artifact=loadable.name, element=pf_b.tensor, index=pos_b,
                    hint="prefetch queue order must follow consumption order",
                ))
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("analyze.hazard.loadables").inc()
        if findings:
            metrics.counter("analyze.hazard.findings").inc(len(findings))
    return findings


# ----------------------------------------------------------------------
# Program-level analysis: instruction stream + DMA descriptor table
# ----------------------------------------------------------------------


@dataclass
class _Transfer:
    """One started DMA transfer during abstract interpretation."""

    node_id: str
    pc: int
    descriptor_index: int
    engine: str          # "dma_read" | "dma_write"
    ram: str             # "data" | "weight"
    rows: RowRange
    writes_sram: bool    # DRAM -> SRAM direction
    in_flight: bool = True
    consumed: bool = False


@dataclass
class _ProgramLoop:
    body_start: int
    remaining: int
    iterations_seen: int = 0
    entry_addr: tuple[int | None, ...] = ()


# Bounded exactly like ``program_rules``: kernels reach an address fixpoint
# (or widen) within a few loop iterations.
_MAX_STEPS = 200_000
_LOOP_WIDEN_AFTER = 4


def _normalize_descriptors(
    descriptors: dict[int, DMAOp] | list[DMAOp | None] | None,
) -> dict[int, DMAOp]:
    if descriptors is None:
        return {}
    if isinstance(descriptors, dict):
        return dict(descriptors)
    return {
        index: descriptor
        for index, descriptor in enumerate(descriptors)
        if descriptor is not None
    }


def build_program_hazard_graph(
    program: list[Instruction],
    descriptors: dict[int, DMAOp] | list[DMAOp | None] | None,
    config: NcoreConfig | None = None,
    name: str = "program",
) -> tuple[HazardGraph, list[Diagnostic]]:
    """Interpret a program abstractly; return its HB graph plus findings.

    Address registers are tracked as ``int | None`` with the same loop
    fixpoint/widening discipline as the program verifier, so every
    reported hazard involves statically-known row intervals.
    """
    config = config or NcoreConfig()
    table = _normalize_descriptors(descriptors)
    hb = HazardGraph(name=name)
    findings: list[Diagnostic] = []
    reported: set[tuple[str, int]] = set()

    def report(rule, message: str, element: str, index: int, hint: str = "") -> None:
        key = (rule.id, index)
        if key in reported:
            return
        reported.add(key)
        findings.append(diag(
            rule, message, artifact=name, element=element, index=index, hint=hint,
        ))

    transfers: list[_Transfer] = []
    transfer_at_pc: dict[int, _Transfer] = {}
    last_engine_node: dict[str, str] = {}
    previous_node: str | None = None

    def link(node_id: str) -> str:
        nonlocal previous_node
        if previous_node is not None and previous_node != node_id:
            hb.add_edge(previous_node, node_id, "program")
        previous_node = node_id
        return node_id

    def touch_read(ram: str, rows: RowRange | None, pc: int, what: str) -> None:
        """A compute read of ``rows`` (``None`` = statically unknown)."""
        for transfer in transfers:
            if transfer.ram != ram:
                continue
            if rows is None:
                transfer.consumed = True
                continue
            if not _overlap(rows, transfer.rows):
                continue
            transfer.consumed = True
            if transfer.in_flight and transfer.writes_sram:
                report(
                    RAW,
                    f"{what} reads {ram} RAM rows [{rows.start}, {rows.end}) "
                    f"while DMA descriptor {transfer.descriptor_index} "
                    f"(started at pc {transfer.pc}) is still writing rows "
                    f"[{transfer.rows.start}, {transfer.rows.end})",
                    element=what, index=pc,
                    hint="insert a dmawait before the first read",
                )

    def touch_write(ram: str, rows: RowRange, pc: int, what: str) -> None:
        for transfer in transfers:
            if transfer.ram != ram or not transfer.in_flight:
                continue
            if not _overlap(rows, transfer.rows):
                continue
            if transfer.writes_sram:
                report(
                    WAW,
                    f"{what} writes {ram} RAM rows [{rows.start}, {rows.end}) "
                    f"while DMA descriptor {transfer.descriptor_index} "
                    f"(started at pc {transfer.pc}) is still filling rows "
                    f"[{transfer.rows.start}, {transfer.rows.end})",
                    element=what, index=pc,
                    hint="insert a dmawait before overwriting the landing zone",
                )
            else:
                report(
                    WAR,
                    f"{what} overwrites {ram} RAM rows [{rows.start}, "
                    f"{rows.end}) while DMA descriptor "
                    f"{transfer.descriptor_index} (started at pc "
                    f"{transfer.pc}) is still reading them out to DRAM",
                    element=what, index=pc,
                    hint="insert a dmawait 2 before reusing the buffer",
                )

    addr: list[int | None] = [0] * NUM_ADDR_REGS
    loops: list[_ProgramLoop] = []
    pc = 0
    steps = 0
    halted = False
    while 0 <= pc < len(program):
        steps += 1
        if steps > _MAX_STEPS:
            break
        instruction = program[pc]
        repeat = max(1, instruction.repeat)

        increments: dict[int, int] = {}
        compute_id: str | None = None
        for op in instruction.ndu_ops:
            sources = [op.src] if op.src2 is None else [op.src, op.src2]
            for source in sources:
                if source.kind not in RAM_KINDS:
                    continue
                if not 0 <= source.index < NUM_ADDR_REGS:
                    continue
                ram = "data" if source.kind is OperandKind.DATA_RAM else "weight"
                row = addr[source.index]
                if source.increment:
                    increments[source.index] = increments.get(source.index, 0) + 1
                span = (
                    None if row is None
                    else RowRange(row, repeat if source.increment else 1)
                )
                if compute_id is None:
                    compute_id = link(hb.add_node(
                        f"i{pc}", "compute", f"pc {pc}", ram=ram, rows=span,
                    ))
                touch_read(ram, span, pc, "ndu")
        if instruction.npu is not None:
            for source in (instruction.npu.data, instruction.npu.weight):
                if source.kind not in RAM_KINDS:
                    continue
                if not 0 <= source.index < NUM_ADDR_REGS:
                    continue
                ram = "data" if source.kind is OperandKind.DATA_RAM else "weight"
                row = addr[source.index]
                if source.increment:
                    increments[source.index] = increments.get(source.index, 0) + 1
                span = (
                    None if row is None
                    else RowRange(row, repeat if source.increment else 1)
                )
                if compute_id is None:
                    compute_id = link(hb.add_node(
                        f"i{pc}", "compute", f"pc {pc}", ram=ram, rows=span,
                    ))
                touch_read(ram, span, pc, "npu")
        out = instruction.out
        if (out is not None
                and out.opcode in (OutOpcode.STORE, OutOpcode.STORE_ACC)
                and 0 <= out.dst_addr_reg < NUM_ADDR_REGS):
            rows_per_issue = 4 if out.opcode is OutOpcode.STORE_ACC else 1
            if out.dst_increment:
                increments[out.dst_addr_reg] = (
                    increments.get(out.dst_addr_reg, 0) + rows_per_issue
                )
            row = addr[out.dst_addr_reg]
            if row is not None:
                span = rows_per_issue + (
                    (repeat - 1) * rows_per_issue if out.dst_increment else 0
                )
                store_rows = RowRange(row, span)
                if compute_id is None:
                    compute_id = link(hb.add_node(
                        f"i{pc}", "compute", f"pc {pc}",
                        ram="data", rows=store_rows,
                    ))
                touch_write("data", store_rows, pc, "out")
        for reg, per_issue in increments.items():
            if addr[reg] is not None:
                addr[reg] += per_issue * repeat  # type: ignore[operator]

        seq = instruction.seq
        opcode = seq.opcode
        if instruction.repeat > 1 and opcode is not SeqOpcode.NOP:
            opcode = SeqOpcode.NOP  # isa.repeat-seq reports this defect
        next_pc = pc + 1
        if opcode is SeqOpcode.HALT:
            halted = True
            link(hb.add_node("halt", "halt", "halt"))
            break
        if opcode is SeqOpcode.DMA_START:
            descriptor = table.get(seq.arg)
            if descriptor is not None and pc not in transfer_at_pc:
                engine = "dma_write" if descriptor.write_to_dram else "dma_read"
                ram = "weight" if descriptor.target_weight_ram else "data"
                rows = RowRange(descriptor.ram_row, descriptor.rows)
                node_id = link(hb.add_node(
                    f"d{pc}", "dma",
                    f"dmastart {seq.arg} ({engine})", ram=ram, rows=rows,
                ))
                if engine in last_engine_node:
                    hb.add_edge(last_engine_node[engine], node_id, "engine")
                last_engine_node[engine] = node_id
                transfer = _Transfer(
                    node_id=node_id, pc=pc, descriptor_index=seq.arg,
                    engine=engine, ram=ram, rows=rows,
                    writes_sram=not descriptor.write_to_dram,
                )
                if descriptor.write_to_dram:
                    # Outbound transfer: the DMA itself reads the rows.
                    touch_read(ram, rows, pc, "dma")
                else:
                    touch_write(ram, rows, pc, "dma")
                transfers.append(transfer)
                transfer_at_pc[pc] = transfer
        elif opcode is SeqOpcode.DMA_WAIT and seq.arg in SeqOp.DMA_WAIT_GROUPS:
            engines = set()
            if seq.arg in (0, 1, 3):
                engines.add("dma_read")
            if seq.arg in (0, 2, 3):
                engines.add("dma_write")
            wait_id = link(hb.add_node(
                f"w{pc}", "wait", f"dmawait {seq.arg}",
            ))
            for transfer in transfers:
                if transfer.in_flight and transfer.engine in engines:
                    transfer.in_flight = False
                    hb.add_edge(transfer.node_id, wait_id, "wait")
        elif opcode is SeqOpcode.LOOP_BEGIN:
            if len(loops) >= 8:  # isa.loop-depth reports the real limit
                break
            loops.append(_ProgramLoop(
                body_start=pc + 1,
                remaining=max(1, seq.arg2),
                entry_addr=tuple(addr),
            ))
        elif opcode is SeqOpcode.LOOP_END:
            if not loops:
                break  # isa.loop-structure reports the defect
            frame = loops[-1]
            frame.remaining -= 1
            frame.iterations_seen += 1
            if frame.remaining > 0:
                if tuple(addr) == frame.entry_addr:
                    loops.pop()
                elif frame.iterations_seen >= _LOOP_WIDEN_AFTER:
                    for reg, before in enumerate(frame.entry_addr):
                        if addr[reg] != before:
                            addr[reg] = None
                    loops.pop()
                else:
                    frame.entry_addr = tuple(addr)
                    next_pc = frame.body_start
            else:
                loops.pop()
        elif opcode is SeqOpcode.SET_ADDR:
            if 0 <= seq.arg < NUM_ADDR_REGS:
                addr[seq.arg] = seq.arg2
        elif opcode is SeqOpcode.ADD_ADDR:
            if 0 <= seq.arg < NUM_ADDR_REGS and addr[seq.arg] is not None:
                addr[seq.arg] += seq.arg2  # type: ignore[operator]
        pc = next_pc

    if halted:
        for transfer in transfers:
            if transfer.in_flight:
                report(
                    UNWAITED_DMA,
                    f"DMA descriptor {transfer.descriptor_index} started at "
                    f"pc {transfer.pc} is never awaited before halt",
                    element="dma", index=transfer.pc,
                    hint="add a dmawait before halt",
                )
        for transfer in transfers:
            if transfer.writes_sram and not transfer.consumed:
                report(
                    DEAD_WRITE,
                    f"DMA descriptor {transfer.descriptor_index} (pc "
                    f"{transfer.pc}) fills {transfer.ram} RAM rows "
                    f"[{transfer.rows.start}, {transfer.rows.end}) that "
                    "nothing ever reads",
                    element="dma", index=transfer.pc,
                )
    cycle = hb.find_cycle()
    if cycle is not None:
        report(
            HB_CYCLE,
            "the happens-before graph has a cycle: " + " -> ".join(cycle),
            element="program", index=0,
        )
    return hb, findings


def analyze_program_hazards(
    program: list[Instruction],
    descriptors: dict[int, DMAOp] | list[DMAOp | None] | None = None,
    config: NcoreConfig | None = None,
    name: str = "program",
    suppress: tuple[str, ...] = (),
) -> AnalysisReport:
    """Hazard pass over an assembled program + its DMA descriptor table."""
    report = AnalysisReport()
    _, findings = build_program_hazard_graph(program, descriptors, config, name)
    report.extend(findings)
    if suppress:
        report = report.suppress(suppress)
    return report
