"""Shape and dtype propagation over the GIR.

The model builders declare every tensor's :class:`TensorType` explicitly;
this module recomputes the output types each node *should* produce from its
declared input types, so the GIR verifier can re-check every declaration
instead of trusting it.  Unlike :func:`repro.graph.reference.infer_shapes`
(which covers only the shape-bearing convolution/pool ops and raises on the
first mismatch), the propagation here covers the whole operator vocabulary
and reports every inconsistency.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.dtypes import NcoreDType
from repro.graph.gir import Graph, Node, TensorType


class ShapeInferenceError(ValueError):
    """A node's declared input types are inconsistent with its op."""


def _out_dim(size: int, k: int, stride: int, pad: tuple[int, int]) -> int:
    return (size + pad[0] + pad[1] - k) // stride + 1


def _require_rank(shape: tuple[int, ...], rank: int, what: str) -> None:
    if len(shape) != rank:
        raise ShapeInferenceError(f"{what} must be rank {rank}, got shape {shape}")


def _broadcast(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    try:
        return tuple(np.broadcast_shapes(a, b))
    except ValueError:
        raise ShapeInferenceError(f"shapes {a} and {b} do not broadcast") from None


DType = NcoreDType | str


def _conv2d(node: Node, ins: list[TensorType]) -> list[TensorType]:
    x, w = ins[0], ins[1]
    _require_rank(x.shape, 4, "conv2d input")
    _require_rank(w.shape, 4, "conv2d weights (HWIO)")
    if x.shape[3] != w.shape[2]:
        raise ShapeInferenceError(
            f"conv2d channel mismatch: input has {x.shape[3]}, weights expect {w.shape[2]}"
        )
    stride = node.attr("stride", (1, 1))
    padding = node.attr("padding", ((0, 0), (0, 0)))
    out = (
        x.shape[0],
        _out_dim(x.shape[1], w.shape[0], stride[0], padding[0]),
        _out_dim(x.shape[2], w.shape[1], stride[1], padding[1]),
        w.shape[3],
    )
    return [TensorType(out, x.dtype)]


def _depthwise(node: Node, ins: list[TensorType]) -> list[TensorType]:
    x, w = ins[0], ins[1]
    _require_rank(x.shape, 4, "depthwise input")
    _require_rank(w.shape, 3, "depthwise weights (HWC)")
    if x.shape[3] != w.shape[2]:
        raise ShapeInferenceError(
            f"depthwise channel mismatch: input has {x.shape[3]}, weights expect {w.shape[2]}"
        )
    stride = node.attr("stride", (1, 1))
    padding = node.attr("padding", ((0, 0), (0, 0)))
    out = (
        x.shape[0],
        _out_dim(x.shape[1], w.shape[0], stride[0], padding[0]),
        _out_dim(x.shape[2], w.shape[1], stride[1], padding[1]),
        w.shape[2],
    )
    return [TensorType(out, x.dtype)]


def _fully_connected(node: Node, ins: list[TensorType]) -> list[TensorType]:
    x, w = ins[0], ins[1]
    _require_rank(w.shape, 2, "fully_connected weights")
    if not x.shape or x.shape[-1] != w.shape[0]:
        raise ShapeInferenceError(
            f"fully_connected feature mismatch: input {x.shape} vs weights {w.shape}"
        )
    return [TensorType(x.shape[:-1] + (w.shape[1],), x.dtype)]


def _elementwise(node: Node, ins: list[TensorType]) -> list[TensorType]:
    return [TensorType(ins[0].shape, ins[0].dtype)]


def _binary(node: Node, ins: list[TensorType]) -> list[TensorType]:
    shape = _broadcast(ins[0].shape, ins[1].shape)
    return [TensorType(shape, ins[0].dtype)]


def _bias_add(node: Node, ins: list[TensorType]) -> list[TensorType]:
    x, bias = ins[0], ins[1]
    if bias.shape and x.shape and bias.shape[-1] != x.shape[-1]:
        raise ShapeInferenceError(
            f"bias length {bias.shape[-1]} does not match channels {x.shape[-1]}"
        )
    return [TensorType(x.shape, x.dtype)]


def _batch_norm(node: Node, ins: list[TensorType]) -> list[TensorType]:
    channels = ins[0].shape[-1] if ins[0].shape else 0
    for i, param in enumerate(ins[1:5], start=1):
        if param.shape and param.shape[-1] != channels:
            raise ShapeInferenceError(
                f"batch_norm parameter {i} has {param.shape[-1]} channels, input has {channels}"
            )
    return [TensorType(ins[0].shape, ins[0].dtype)]


def _concat(node: Node, ins: list[TensorType]) -> list[TensorType]:
    axis = node.attr("axis", -1)
    first = ins[0].shape
    rank = len(first)
    norm_axis = axis % rank if rank else 0
    total = 0
    for t in ins:
        if len(t.shape) != rank:
            raise ShapeInferenceError("concat inputs must share rank")
        for dim in range(rank):
            if dim != norm_axis and t.shape[dim] != first[dim]:
                raise ShapeInferenceError(
                    f"concat inputs disagree on non-axis dim {dim}: {t.shape} vs {first}"
                )
        total += t.shape[norm_axis]
    out = tuple(total if d == norm_axis else first[d] for d in range(rank))
    return [TensorType(out, ins[0].dtype)]


def _pad(node: Node, ins: list[TensorType]) -> list[TensorType]:
    x = ins[0]
    _require_rank(x.shape, 4, "pad input")
    (top, bottom), (left, right) = node.attrs["padding"]
    out = (x.shape[0], x.shape[1] + top + bottom, x.shape[2] + left + right, x.shape[3])
    return [TensorType(out, x.dtype)]


def _pool(node: Node, ins: list[TensorType]) -> list[TensorType]:
    x = ins[0]
    _require_rank(x.shape, 4, f"{node.op} input")
    kh, kw = node.attrs["ksize"]
    stride = node.attrs["stride"]
    padding = node.attr("padding", ((0, 0), (0, 0)))
    out = (
        x.shape[0],
        _out_dim(x.shape[1], kh, stride[0], padding[0]),
        _out_dim(x.shape[2], kw, stride[1], padding[1]),
        x.shape[3],
    )
    return [TensorType(out, x.dtype)]


def _mean(node: Node, ins: list[TensorType]) -> list[TensorType]:
    axes = node.attr("axis", (1, 2))
    if isinstance(axes, int):
        axes = (axes,)
    rank = len(ins[0].shape)
    keep = tuple(
        dim for i, dim in enumerate(ins[0].shape) if i not in {a % rank for a in axes}
    )
    return [TensorType(keep if keep else (1,), ins[0].dtype)]


def _reshape(node: Node, ins: list[TensorType]) -> list[TensorType]:
    shape = tuple(node.attrs["shape"])
    if int(np.prod(shape)) != ins[0].num_elements:
        raise ShapeInferenceError(
            f"reshape to {shape} changes element count "
            f"({ins[0].num_elements} -> {int(np.prod(shape))})"
        )
    return [TensorType(shape, ins[0].dtype)]


def _slice(node: Node, ins: list[TensorType]) -> list[TensorType]:
    x = ins[0]
    axis, begin, size = node.attrs["axis"], node.attrs["begin"], node.attrs["size"]
    rank = len(x.shape)
    axis = axis % rank
    if begin < 0 or begin + size > x.shape[axis]:
        raise ShapeInferenceError(
            f"slice [{begin}, {begin + size}) exceeds dim {axis} of size {x.shape[axis]}"
        )
    out = list(x.shape)
    out[axis] = size
    if node.attr("squeeze", False):
        del out[axis]
    return [TensorType(tuple(out), x.dtype)]


def _quantize(node: Node, ins: list[TensorType]) -> list[TensorType]:
    # Output dtype comes from the declared output tensor; shape is preserved.
    return [TensorType(ins[0].shape, NcoreDType.UINT8)]


def _dequantize(node: Node, ins: list[TensorType]) -> list[TensorType]:
    return [TensorType(ins[0].shape, "float32")]


def _embedding(node: Node, ins: list[TensorType]) -> list[TensorType]:
    table, ids = ins[0], ins[1]
    _require_rank(table.shape, 2, "embedding table")
    return [TensorType(ids.shape + (table.shape[1],), table.dtype)]


def _lstm_cell(node: Node, ins: list[TensorType]) -> list[TensorType]:
    x, w = ins[0], ins[1]
    _require_rank(w.shape, 2, "lstm_cell weights")
    hidden = w.shape[1] // 4
    if len(ins) > 3 and ins[3].shape and ins[3].shape[-1] != hidden:
        raise ShapeInferenceError(
            f"lstm_cell hidden state has {ins[3].shape[-1]} features, weights imply {hidden}"
        )
    if x.shape[-1] + hidden != w.shape[0]:
        raise ShapeInferenceError(
            f"lstm_cell weights expect {w.shape[0]} stacked features, "
            f"got input {x.shape[-1]} + hidden {hidden}"
        )
    state = TensorType((x.shape[0], hidden), x.dtype)
    return [state, state]


def _lstm_step(node: Node, ins: list[TensorType]) -> list[TensorType]:
    x_seq, wx, wh, h_prev = ins[0], ins[1], ins[2], ins[4]
    _require_rank(wx.shape, 2, "lstm_step input weights")
    _require_rank(wh.shape, 2, "lstm_step recurrent weights")
    hidden = wh.shape[0]
    if wx.shape[1] != 4 * hidden or wh.shape[1] != 4 * hidden:
        raise ShapeInferenceError(
            f"lstm_step gate widths disagree: wx {wx.shape}, wh {wh.shape} "
            f"(want (*, {4 * hidden}))"
        )
    if x_seq.shape[-1] != wx.shape[0]:
        raise ShapeInferenceError(
            f"lstm_step sequence has {x_seq.shape[-1]} features, "
            f"input weights expect {wx.shape[0]}"
        )
    if len(x_seq.shape) < 2:
        raise ShapeInferenceError("lstm_step sequence must be at least rank 2")
    t = node.attrs["t"]
    seq_len = x_seq.shape[-2]
    if not 0 <= int(t) < seq_len:
        raise ShapeInferenceError(
            f"lstm_step t={t} outside sequence of length {seq_len}"
        )
    if h_prev.shape and h_prev.shape[-1] != hidden:
        raise ShapeInferenceError(
            f"lstm_step hidden state has {h_prev.shape[-1]} features, "
            f"weights imply {hidden}"
        )
    state = TensorType((h_prev.shape[0], hidden), x_seq.dtype)
    return [state, state]


def _attention(node: Node, ins: list[TensorType]) -> list[TensorType]:
    query, keys = ins[0], ins[1]
    _require_rank(keys.shape, 3, "attention keys")
    if query.shape[-1] != keys.shape[-1]:
        raise ShapeInferenceError(
            f"attention hidden mismatch: query {query.shape[-1]} vs keys {keys.shape[-1]}"
        )
    return [TensorType((keys.shape[0], keys.shape[2]), query.dtype)]


def _softmax(node: Node, ins: list[TensorType]) -> list[TensorType]:
    return [TensorType(ins[0].shape, ins[0].dtype)]


def _nms(node: Node, ins: list[TensorType]) -> list[TensorType]:
    max_det = node.attr("max_detections", 10)
    return [
        TensorType((max_det, 4), "float32"),
        TensorType((max_det,), "float32"),
        TensorType((max_det,), "int32"),
    ]


_MIN_INPUTS: dict[str, int] = {
    "conv2d": 2, "depthwise_conv2d": 2, "fully_connected": 2, "bias_add": 2,
    "batch_norm": 5, "relu": 1, "relu6": 1, "tanh": 1, "sigmoid": 1,
    "softmax": 1, "add": 2, "mul": 2, "concat": 1, "pad": 1, "max_pool": 1,
    "avg_pool": 1, "mean": 1, "reshape": 1, "slice": 1, "quantize": 1,
    "dequantize": 1, "embedding": 2, "lstm_cell": 5, "lstm_step": 6,
    "attention": 2,
    "nms": 2, "identity": 1,
}

_INFERENCE: dict[str, Callable[[Node, list[TensorType]], list[TensorType]]] = {
    "conv2d": _conv2d,
    "depthwise_conv2d": _depthwise,
    "fully_connected": _fully_connected,
    "bias_add": _bias_add,
    "batch_norm": _batch_norm,
    "relu": _elementwise,
    "relu6": _elementwise,
    "tanh": _elementwise,
    "sigmoid": _elementwise,
    "softmax": _softmax,
    "add": _binary,
    "mul": _binary,
    "concat": _concat,
    "pad": _pad,
    "max_pool": _pool,
    "avg_pool": _pool,
    "mean": _mean,
    "reshape": _reshape,
    "slice": _slice,
    "quantize": _quantize,
    "dequantize": _dequantize,
    "embedding": _embedding,
    "lstm_cell": _lstm_cell,
    "lstm_step": _lstm_step,
    "attention": _attention,
    "nms": _nms,
    "identity": _elementwise,
}


def infer_node_types(graph: Graph, node: Node) -> list[TensorType]:
    """Output types ``node`` should produce, from its declared input types.

    Raises :class:`ShapeInferenceError` when the declared inputs are
    inconsistent with the op's semantics (wrong rank, channel mismatch,
    missing inputs, bad attributes).
    """
    if len(node.inputs) < _MIN_INPUTS.get(node.op, 0):
        raise ShapeInferenceError(
            f"{node.op} needs at least {_MIN_INPUTS[node.op]} inputs, "
            f"got {len(node.inputs)}"
        )
    ins = [graph.tensor(name).type for name in node.inputs]
    try:
        return _INFERENCE[node.op](node, ins)
    except KeyError as exc:  # missing required attribute
        raise ShapeInferenceError(f"{node.op} is missing attribute {exc}") from None


def shapes_compatible(declared: TensorType, inferred: TensorType) -> bool:
    """Whether a declared output type matches the inferred one.

    Shapes must match exactly.  Dtypes are compared loosely: the propagation
    carries the *input* dtype forward, but fused requantization legitimately
    changes integer widths (uint8 conv producing uint8 from int8 weights,
    int32 bias paths), so only the float-vs-integer class must agree —
    except for ops whose dtype contract is exact (quantize/dequantize/nms),
    which the GIR rules check separately.
    """
    if declared.shape != inferred.shape:
        return False
    return is_float_dtype(declared.dtype) == is_float_dtype(inferred.dtype)


def is_float_dtype(dtype: NcoreDType | str) -> bool:
    if isinstance(dtype, str):
        return dtype == "float32"
    return dtype is NcoreDType.BF16
