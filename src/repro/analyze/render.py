"""Text and JSON renderers for :class:`~repro.analyze.AnalysisReport`."""

from __future__ import annotations

import json
from typing import Any

from repro.analyze.diagnostics import AnalysisReport, Severity


def render_text(report: AnalysisReport, *, verbose: bool = False) -> str:
    """Human-readable rendering, worst findings first, ending in a summary.

    ``verbose`` includes info-severity findings; by default only errors and
    warnings are listed (the summary always counts everything).
    """
    lines = []
    for diagnostic in report.sorted():
        if diagnostic.severity is Severity.INFO and not verbose:
            continue
        lines.append(diagnostic.render())
    errors = len(report.errors)
    warnings = len(report.warnings)
    infos = len(report) - errors - warnings
    summary = f"{errors} error(s), {warnings} warning(s)"
    if infos:
        summary += f", {infos} note(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport, *, indent: int | None = 2) -> str:
    """Machine-readable rendering: a stable JSON document."""
    payload: dict[str, Any] = {
        "ok": report.ok,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "diagnostics": [d.to_json() for d in report.sorted()],
    }
    return json.dumps(payload, indent=indent)
