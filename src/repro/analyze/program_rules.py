"""Program verifier: abstract interpretation of assembled Ncore programs.

Re-checks a ``list[Instruction]`` against the architectural limits and the
target :class:`~repro.ncore.config.NcoreConfig` without running the
simulator.  Address registers are tracked as ``int | None`` (``None`` =
statically unknown); hardware loops are interpreted until the address state
reaches a fixpoint, after which changing registers are widened to unknown —
so every reported out-of-bounds access is real, and unknowable accesses are
simply not reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import (
    MAX_NDU_OPS,
    MAX_REPEAT,
    MAX_ROTATE_PER_CLOCK,
    Instruction,
    NDUOp,
    NDUOpcode,
    OutOp,
    OutOpcode,
    SeqOp,
    SeqOpcode,
)
from repro.isa.operands import (
    NUM_ADDR_REGS,
    NUM_DMA_DESCRIPTORS,
    NUM_LOOP_COUNTERS,
    NUM_NDU_REGS,
    NUM_PRED_REGS,
    RAM_KINDS,
    Operand,
    OperandKind,
)
from repro.ncore.config import NcoreConfig

from repro.analyze.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Rule,
    Severity,
    diag,
    register_rule,
)

NDU_OPS = register_rule(
    "isa.ndu-ops", Severity.ERROR, "too many parallel NDU micro-ops",
    f"An instruction packs more than {MAX_NDU_OPS} NDU operations, or two "
    "parallel NDU ops write the same output register.",
)
REPEAT = register_rule(
    "isa.repeat", Severity.ERROR, "repeat count outside the 16-bit field",
    f"The hardware repeat count must be in 1..{MAX_REPEAT}.",
)
ROTATE = register_rule(
    "isa.rotate", Severity.ERROR, "rotate distance beyond the barrel width",
    f"The NDU rotates at most {MAX_ROTATE_PER_CLOCK} bytes per clock; larger "
    "logical rotations must be composed via the repeat field.",
)
REGISTER = register_rule(
    "isa.register", Severity.ERROR, "register index out of range",
    "An operand or unit field names a register beyond the architectural "
    "register file (addr a0..a7, NDU n0..n3, predicate p0..p7).",
)
REPEAT_SEQ = register_rule(
    "isa.repeat-seq", Severity.ERROR, "sequencer op under a hardware repeat",
    "repeat > 1 cannot be combined with a non-NOP sequencer op; the machine "
    "rejects this at issue time.",
)
LOOP_DEPTH = register_rule(
    "isa.loop-depth", Severity.ERROR, "hardware loop nesting too deep",
    f"Loops nest deeper than the {NUM_LOOP_COUNTERS} hardware loop counters.",
)
LOOP_STRUCTURE = register_rule(
    "isa.loop-structure", Severity.ERROR, "unbalanced hardware loop",
    "An endloop has no matching loop begin, or a loop is still open when "
    "the program halts.",
)
DMA_DESCRIPTOR = register_rule(
    "isa.dma-descriptor", Severity.ERROR, "DMA descriptor index out of range",
    f"dmastart references a descriptor slot beyond {NUM_DMA_DESCRIPTORS}.",
)
DMA_WAIT = register_rule(
    "isa.dma-wait", Severity.ERROR, "DMA wait group out of range",
    "dmawait names an engine group outside 0..3; the hardware would wait "
    "on no engine at all, silently skipping the synchronization.",
)
SRAM_BOUNDS = register_rule(
    "isa.sram-bounds", Severity.ERROR, "RAM access outside the scratchpad",
    "A statically-known address register walks a RAM row outside the "
    "configured scratchpad during the instruction's repeat issues.",
)
NO_HALT = register_rule(
    "isa.no-halt", Severity.ERROR, "program never halts",
    "Execution can fall off the end of the instruction memory; every "
    "program must end every path with halt.",
)
IRAM_OVERFLOW = register_rule(
    "isa.iram-overflow", Severity.ERROR, "program exceeds instruction RAM",
    "The program has more instructions than the IRAM holds.",
)
BUDGET = register_rule(
    "isa.budget", Severity.INFO, "analysis budget exhausted",
    "Abstract interpretation stopped early; later instructions were only "
    "structurally checked.",
)

# Abstract-interpretation step budget.  Real kernels converge in far fewer
# steps because loop bodies reach an address fixpoint (or widen to unknown)
# within a few iterations.
_MAX_STEPS = 200_000

# Iterations of a hardware loop interpreted precisely before the registers
# it changes are widened to unknown.
_LOOP_WIDEN_AFTER = 4


def _check_operand(
    operand: Operand, name: str, unit: str, index: int
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    limits = {
        OperandKind.DATA_RAM: NUM_ADDR_REGS,
        OperandKind.WEIGHT_RAM: NUM_ADDR_REGS,
        OperandKind.NDU_REG: NUM_NDU_REGS,
        OperandKind.IMMEDIATE: 64,
    }
    limit = limits.get(operand.kind, 1)
    if not 0 <= operand.index < limit:
        findings.append(diag(
            REGISTER,
            f"{unit} operand {operand.kind.value!r} index {operand.index} "
            f"exceeds limit {limit}",
            artifact=name, element=unit, index=index,
        ))
    return findings


def _check_structure(
    program: list[Instruction], name: str, config: NcoreConfig
) -> list[Diagnostic]:
    """Per-instruction structural limits, independent of control flow."""
    findings: list[Diagnostic] = []
    if len(program) > config.iram_instructions:
        findings.append(diag(
            IRAM_OVERFLOW,
            f"program has {len(program)} instructions but the IRAM holds "
            f"{config.iram_instructions}",
            artifact=name, element="program",
        ))
    for index, instruction in enumerate(program):
        if len(instruction.ndu_ops) > MAX_NDU_OPS:
            findings.append(diag(
                NDU_OPS,
                f"{len(instruction.ndu_ops)} parallel NDU ops exceed the "
                f"limit of {MAX_NDU_OPS}",
                artifact=name, element="ndu", index=index,
            ))
        dsts = [op.dst for op in instruction.ndu_ops]
        if len(dsts) != len(set(dsts)):
            findings.append(diag(
                NDU_OPS,
                "parallel NDU ops write the same output register",
                artifact=name, element="ndu", index=index,
            ))
        if not 1 <= instruction.repeat <= MAX_REPEAT:
            findings.append(diag(
                REPEAT,
                f"repeat count {instruction.repeat} outside 1..{MAX_REPEAT}",
                artifact=name, element="repeat", index=index,
            ))
        if instruction.repeat > 1 and instruction.seq.opcode is not SeqOpcode.NOP:
            findings.append(diag(
                REPEAT_SEQ,
                f"sequencer op {instruction.seq.opcode.value!r} combined with "
                f"repeat {instruction.repeat}",
                artifact=name, element="seq", index=index,
                hint="split the sequencer op into its own instruction",
            ))
        findings.extend(_check_ndu_ops(instruction.ndu_ops, name, index))
        if instruction.npu is not None:
            npu = instruction.npu
            findings.extend(_check_operand(npu.data, name, "npu", index))
            findings.extend(_check_operand(npu.weight, name, "npu", index))
            if npu.predicate is not None and not 0 <= npu.predicate < NUM_PRED_REGS:
                findings.append(diag(
                    REGISTER,
                    f"NPU predicate register {npu.predicate} exceeds "
                    f"{NUM_PRED_REGS}",
                    artifact=name, element="npu", index=index,
                ))
        if instruction.out is not None:
            findings.extend(_check_out(instruction.out, name, index))
        findings.extend(_check_seq(instruction, name, index))
    return findings


def _check_ndu_ops(
    ops: tuple[NDUOp, ...], name: str, index: int
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    for op in ops:
        if not 0 <= op.dst < NUM_NDU_REGS:
            findings.append(diag(
                REGISTER,
                f"NDU destination register n{op.dst} exceeds {NUM_NDU_REGS}",
                artifact=name, element="ndu", index=index,
            ))
        if not 0 <= op.index_reg < NUM_ADDR_REGS:
            findings.append(diag(
                REGISTER,
                f"NDU index register a{op.index_reg} exceeds {NUM_ADDR_REGS}",
                artifact=name, element="ndu", index=index,
            ))
        if op.opcode is NDUOpcode.ROTATE and not 0 <= op.amount <= MAX_ROTATE_PER_CLOCK:
            findings.append(diag(
                ROTATE,
                f"rotate amount {op.amount} exceeds {MAX_ROTATE_PER_CLOCK} "
                "bytes per clock",
                artifact=name, element="ndu", index=index,
                hint="compose large rotations with the repeat field",
            ))
        findings.extend(_check_operand(op.src, name, "ndu", index))
        if op.src2 is not None:
            findings.extend(_check_operand(op.src2, name, "ndu", index))
    return findings


def _check_out(out: OutOp, name: str, index: int) -> list[Diagnostic]:
    if not 0 <= out.dst_addr_reg < NUM_ADDR_REGS:
        return [diag(
            REGISTER,
            f"OUT store address register a{out.dst_addr_reg} exceeds "
            f"{NUM_ADDR_REGS}",
            artifact=name, element="out", index=index,
        )]
    return []


def _check_seq(
    instruction: Instruction, name: str, index: int
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    seq = instruction.seq
    if (seq.opcode in (SeqOpcode.SET_ADDR, SeqOpcode.ADD_ADDR)
            and not 0 <= seq.arg < NUM_ADDR_REGS):
        findings.append(diag(
            REGISTER,
            f"sequencer address register a{seq.arg} exceeds {NUM_ADDR_REGS}",
            artifact=name, element="seq", index=index,
        ))
    if (seq.opcode is SeqOpcode.DMA_START
            and not 0 <= seq.arg < NUM_DMA_DESCRIPTORS):
        findings.append(diag(
            DMA_DESCRIPTOR,
            f"DMA descriptor {seq.arg} exceeds {NUM_DMA_DESCRIPTORS} slots",
            artifact=name, element="seq", index=index,
        ))
    if seq.opcode is SeqOpcode.DMA_WAIT and seq.arg not in SeqOp.DMA_WAIT_GROUPS:
        findings.append(diag(
            DMA_WAIT,
            f"DMA wait group {seq.arg} is not a valid engine group (0..3)",
            artifact=name, element="seq", index=index,
        ))
    return findings


@dataclass
class _LoopFrame:
    body_start: int
    remaining: int
    iterations_seen: int = 0
    entry_addr: tuple[int | None, ...] = ()


@dataclass
class _AbstractState:
    """The interpreter's machine state: addr regs as ``int | None``."""

    addr: list[int | None] = field(default_factory=lambda: [0] * NUM_ADDR_REGS)
    loops: list[_LoopFrame] = field(default_factory=list)

    def widen_changed(self, baseline: tuple[int | None, ...]) -> None:
        for reg, before in enumerate(baseline):
            if self.addr[reg] != before:
                self.addr[reg] = None


def _ram_operands(instruction: Instruction) -> list[tuple[Operand, str]]:
    """Every RAM-addressed operand of one instruction, with its unit name."""
    operands: list[tuple[Operand, str]] = []
    for op in instruction.ndu_ops:
        for source in (op.src, op.src2):
            if source is not None and source.kind in RAM_KINDS:
                operands.append((source, "ndu"))
    if instruction.npu is not None:
        for source in (instruction.npu.data, instruction.npu.weight):
            if source.kind in RAM_KINDS:
                operands.append((source, "npu"))
    return operands


def _interpret(
    program: list[Instruction], name: str, config: NcoreConfig
) -> list[Diagnostic]:
    """Walk the program with abstract address registers.

    Reports ``isa.sram-bounds`` only for statically-known addresses,
    ``isa.loop-*`` violations and ``isa.no-halt``.  Bails out with an
    ``isa.budget`` note if the step budget runs dry.
    """
    findings: list[Diagnostic] = []
    reported: set[tuple[str, int]] = set()

    def report(rule: Rule, message: str, element: str, index: int, hint: str = "") -> None:
        key = (rule.id, index)
        if key in reported:  # one finding per rule per instruction
            return
        reported.add(key)
        findings.append(diag(
            rule, message, artifact=name, element=element, index=index, hint=hint,
        ))

    state = _AbstractState()
    pc = 0
    steps = 0
    halted = False
    while 0 <= pc < len(program):
        steps += 1
        if steps > _MAX_STEPS:
            report(
                BUDGET,
                f"stopped after {_MAX_STEPS} interpreted issues; remaining "
                "instructions were only structurally checked",
                "program", pc,
            )
            return findings
        instruction = program[pc]
        repeat = max(1, min(instruction.repeat, MAX_REPEAT))

        increments: dict[int, int] = {}
        for operand, unit in _ram_operands(instruction):
            if not 0 <= operand.index < NUM_ADDR_REGS:
                continue  # reported by the structural pass
            row = state.addr[operand.index]
            if operand.increment:
                increments[operand.index] = increments.get(operand.index, 0) + 1
            if row is None:
                continue
            last_row = row + (repeat - 1 if operand.increment else 0)
            if row < 0 or last_row >= config.sram_rows:
                ram = "data RAM" if operand.kind is OperandKind.DATA_RAM else "weight RAM"
                report(
                    SRAM_BOUNDS,
                    f"{unit} reads {ram} rows [{row}, {last_row}] via "
                    f"a{operand.index}, but the RAM has {config.sram_rows} rows",
                    unit, pc,
                )
        if instruction.out is not None and instruction.out.opcode in (
            OutOpcode.STORE, OutOpcode.STORE_ACC
        ):
            out = instruction.out
            if 0 <= out.dst_addr_reg < NUM_ADDR_REGS:
                rows_per_issue = 4 if out.opcode is OutOpcode.STORE_ACC else 1
                if out.dst_increment:
                    increments[out.dst_addr_reg] = (
                        increments.get(out.dst_addr_reg, 0) + rows_per_issue
                    )
                row = state.addr[out.dst_addr_reg]
                if row is not None:
                    span = rows_per_issue + (
                        (repeat - 1) * rows_per_issue if out.dst_increment else 0
                    )
                    if row < 0 or row + span > config.sram_rows:
                        report(
                            SRAM_BOUNDS,
                            f"out stores data RAM rows [{row}, {row + span - 1}] "
                            f"via a{out.dst_addr_reg}, but the RAM has "
                            f"{config.sram_rows} rows",
                            "out", pc,
                        )
        for reg, per_issue in increments.items():
            if state.addr[reg] is not None:
                state.addr[reg] += per_issue * repeat  # type: ignore[operator]

        seq = instruction.seq
        opcode = seq.opcode
        next_pc = pc + 1
        if instruction.repeat > 1 and opcode is not SeqOpcode.NOP:
            # structural pass reported isa.repeat-seq; treat the seq op as
            # a NOP so interpretation can continue past it.
            opcode = SeqOpcode.NOP
        if opcode is SeqOpcode.HALT:
            halted = True
            break
        if opcode is SeqOpcode.LOOP_BEGIN:
            if len(state.loops) >= NUM_LOOP_COUNTERS:
                report(
                    LOOP_DEPTH,
                    f"loop nesting exceeds the {NUM_LOOP_COUNTERS} hardware "
                    "loop counters",
                    "seq", pc,
                )
                return findings
            state.loops.append(_LoopFrame(
                body_start=pc + 1,
                remaining=max(1, seq.arg2),
                entry_addr=tuple(state.addr),
            ))
        elif opcode is SeqOpcode.LOOP_END:
            if not state.loops:
                report(
                    LOOP_STRUCTURE,
                    "endloop without a matching loop begin",
                    "seq", pc,
                )
                return findings
            frame = state.loops[-1]
            frame.remaining -= 1
            frame.iterations_seen += 1
            if frame.remaining > 0:
                if tuple(state.addr) == frame.entry_addr:
                    state.loops.pop()  # fixpoint: more iterations change nothing
                elif frame.iterations_seen >= _LOOP_WIDEN_AFTER:
                    state.widen_changed(frame.entry_addr)
                    state.loops.pop()
                else:
                    frame.entry_addr = tuple(state.addr)
                    next_pc = frame.body_start
            else:
                state.loops.pop()
        elif opcode is SeqOpcode.SET_ADDR:
            if 0 <= seq.arg < NUM_ADDR_REGS:
                state.addr[seq.arg] = seq.arg2
        elif opcode is SeqOpcode.ADD_ADDR:
            if 0 <= seq.arg < NUM_ADDR_REGS and state.addr[seq.arg] is not None:
                state.addr[seq.arg] += seq.arg2  # type: ignore[operator]
        pc = next_pc

    if not halted:
        report(
            NO_HALT,
            "execution falls off the end of the program without a halt",
            "program", max(0, len(program) - 1),
            hint="end the program with a halt instruction",
        )
    if halted and state.loops:
        report(
            LOOP_STRUCTURE,
            f"{len(state.loops)} hardware loop(s) still open at halt",
            "seq", pc,
        )
    return findings


def analyze_program(
    program: list[Instruction],
    config: NcoreConfig | None = None,
    name: str = "program",
    suppress: tuple[str, ...] = (),
) -> AnalysisReport:
    """Run the full program pass stack over one assembled program."""
    config = config or NcoreConfig()
    report = AnalysisReport()
    report.extend(_check_structure(program, name, config))
    report.extend(_interpret(program, name, config))
    if suppress:
        report = report.suppress(suppress)
    return report
