"""Loadable verifier: abstract interpretation of DMA schedules and kernels.

Re-checks every :class:`~repro.graph.loadable.NcoreLoadable` against its
:class:`~repro.graph.planner.MemoryPlan` and the target
:class:`~repro.ncore.config.NcoreConfig` *without executing it*: scratchpad
placements must fit the RAMs, no kernel may read a scratchpad region no DMA
or earlier kernel has written, simultaneously-live allocations must not
overlap, and the weight-prefetch schedule must neither arrive late nor
overwrite rows still being consumed (DMA-write vs compute-read hazards).
"""

from __future__ import annotations

from repro.graph.gir import Graph
from repro.graph.loadable import CompiledModel, NcoreLoadable
from repro.graph.planner import Prefetch, RowRange, _live_ranges
from repro.ncore.config import NcoreConfig

from repro.analyze.hazard import analyze_loadable_hazards

from repro.analyze.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    diag,
    register_rule,
)

SRAM_OVERFLOW = register_rule(
    "ldb.sram-overflow", Severity.ERROR, "allocation outside the scratchpad",
    "A planned row range ends beyond the RAM's row capacity; on silicon the "
    "access wraps or faults.",
)
ALLOC_OVERLAP = register_rule(
    "ldb.alloc-overlap", Severity.ERROR, "overlapping live allocations",
    "Two tensors with overlapping live ranges share scratchpad rows; one "
    "will read the other's bytes.",
)
UNINITIALIZED_READ = register_rule(
    "ldb.uninitialized-read", Severity.ERROR, "read of unwritten scratchpad",
    "A kernel reads an activation that no DMA (segment boundary input) and "
    "no earlier kernel in the segment has written — stale scratchpad bytes.",
)
UNPLACED_TENSOR = register_rule(
    "ldb.unplaced-tensor", Severity.ERROR, "kernel operand has no allocation",
    "A kernel touches an activation the memory plan never placed in the "
    "data RAM.",
)
MISSING_WEIGHTS = register_rule(
    "ldb.missing-weights", Severity.ERROR, "weights never staged",
    "A kernel's constant operand has no weight-RAM allocation (and, when "
    "streaming, no prefetch), so the kernel would read stale weight rows.",
)
LATE_PREFETCH = register_rule(
    "ldb.late-prefetch", Severity.ERROR, "weight DMA scheduled after its use",
    "A prefetch is issued after the kernel that needs it; the compute would "
    "consume rows the DMA has not written yet.",
)
PREFETCH_RANGE = register_rule(
    "ldb.prefetch-range", Severity.ERROR, "prefetch indexes outside the segment",
    "A prefetch's issue or needed node index does not name a node of the "
    "segment.",
)
DMA_HAZARD = register_rule(
    "ldb.dma-hazard", Severity.ERROR, "DMA write races a compute read",
    "A weight prefetch overwrites scratchpad rows before the previous "
    "occupant of those rows has been consumed.",
)
KERNEL_MISMATCH = register_rule(
    "ldb.kernel-mismatch", Severity.ERROR, "kernels disagree with the segment",
    "The loadable's kernel invocations do not line up one-to-one with the "
    "segment's nodes.",
)

_ERROR_KEY = "__analyze_internal__"


def _overlap(a: RowRange, b: RowRange) -> bool:
    return a.start < b.end and b.start < a.end


def _check_allocs(
    loadable: NcoreLoadable, config: NcoreConfig
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    plan = loadable.memory_plan
    for ram, allocs in (("data RAM", plan.data_allocs), ("weight RAM", plan.weight_allocs)):
        for tensor, rng in allocs.items():
            if rng.start < 0 or rng.end > config.sram_rows:
                findings.append(diag(
                    SRAM_OVERFLOW,
                    f"{ram} allocation for {tensor!r} spans rows "
                    f"[{rng.start}, {rng.end}) but the RAM has "
                    f"{config.sram_rows} rows",
                    artifact=loadable.name, element=tensor,
                ))
    return findings


def _check_data_overlaps(
    graph: Graph, loadable: NcoreLoadable
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    plan = loadable.memory_plan
    try:
        ranges = _live_ranges(graph, loadable.segment)
    except KeyError:
        return findings  # segment references unknown tensors; reported elsewhere
    placed = [
        (name, rng, ranges[name])
        for name, rng in plan.data_allocs.items()
        if name in ranges
    ]
    for i, (name_a, rows_a, live_a) in enumerate(placed):
        for name_b, rows_b, live_b in placed[i + 1:]:
            rows_clash = _overlap(rows_a, rows_b)
            live_clash = live_a[0] <= live_b[1] and live_b[0] <= live_a[1]
            if rows_clash and live_clash:
                findings.append(diag(
                    ALLOC_OVERLAP,
                    f"tensors {name_a!r} and {name_b!r} are live together "
                    f"(nodes {live_a} vs {live_b}) but share data-RAM rows "
                    f"[{max(rows_a.start, rows_b.start)}, "
                    f"{min(rows_a.end, rows_b.end)})",
                    artifact=loadable.name, element=name_a,
                ))
    return findings


def _check_dataflow(
    graph: Graph, loadable: NcoreLoadable
) -> list[Diagnostic]:
    """Uninitialized-read detection: abstract-interpret the segment's
    kernel order against the set of scratchpad regions written so far."""
    findings: list[Diagnostic] = []
    segment = loadable.segment
    plan = loadable.memory_plan
    written: set[str] = set(segment.input_tensors(graph))  # staged by host DMA
    for index, node in enumerate(segment.nodes):
        for tensor_name in node.inputs:
            tensor = graph.tensor(tensor_name)
            if tensor.is_constant:
                continue
            if tensor_name not in written:
                findings.append(diag(
                    UNINITIALIZED_READ,
                    f"kernel for node {node.name!r} reads {tensor_name!r}, "
                    "which no DMA or earlier kernel has written",
                    artifact=loadable.name, element=node.name, index=index,
                    hint="the segment's node order does not respect dataflow",
                ))
            if tensor_name not in plan.data_allocs:
                findings.append(diag(
                    UNPLACED_TENSOR,
                    f"kernel for node {node.name!r} reads {tensor_name!r}, "
                    "which the memory plan never placed",
                    artifact=loadable.name, element=node.name, index=index,
                ))
        for tensor_name in node.outputs:
            written.add(tensor_name)
            if tensor_name not in plan.data_allocs:
                findings.append(diag(
                    UNPLACED_TENSOR,
                    f"kernel for node {node.name!r} writes {tensor_name!r}, "
                    "which the memory plan never placed",
                    artifact=loadable.name, element=node.name, index=index,
                ))
    return findings


def _check_weights(
    graph: Graph, loadable: NcoreLoadable
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    plan = loadable.memory_plan
    prefetched_by: dict[str, int] = {}
    for prefetch in plan.prefetches:
        base = prefetch.tensor.split("#chunk", 1)[0]
        needed = prefetched_by.get(base, -1)
        prefetched_by[base] = max(needed, prefetch.needed_at_node)
    for index, node in enumerate(loadable.segment.nodes):
        for tensor_name in node.inputs:
            if not graph.tensor(tensor_name).is_constant:
                continue
            if tensor_name not in plan.weight_allocs:
                findings.append(diag(
                    MISSING_WEIGHTS,
                    f"kernel for node {node.name!r} reads constant "
                    f"{tensor_name!r}, which has no weight-RAM allocation",
                    artifact=loadable.name, element=node.name, index=index,
                ))
            elif not plan.weights_pinned:
                needed = prefetched_by.get(tensor_name)
                if needed is None:
                    findings.append(diag(
                        MISSING_WEIGHTS,
                        f"streamed weights for node {node.name!r} constant "
                        f"{tensor_name!r} have no prefetch in the DMA schedule",
                        artifact=loadable.name, element=node.name, index=index,
                    ))
    return findings


def _check_prefetches(
    loadable: NcoreLoadable
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    plan = loadable.memory_plan
    num_nodes = len(loadable.segment.nodes)
    for position, prefetch in enumerate(plan.prefetches):
        if not (0 <= prefetch.issue_at_node < num_nodes) or not (
            0 <= prefetch.needed_at_node < num_nodes
        ):
            findings.append(diag(
                PREFETCH_RANGE,
                f"prefetch of {prefetch.tensor!r} indexes nodes "
                f"({prefetch.issue_at_node}, {prefetch.needed_at_node}) but the "
                f"segment has {num_nodes} node(s)",
                artifact=loadable.name, element=prefetch.tensor, index=position,
            ))
            continue
        if prefetch.issue_at_node > prefetch.needed_at_node:
            findings.append(diag(
                LATE_PREFETCH,
                f"prefetch of {prefetch.tensor!r} is issued before node "
                f"{prefetch.issue_at_node} but needed by node "
                f"{prefetch.needed_at_node}",
                artifact=loadable.name, element=prefetch.tensor, index=position,
                hint="issue_at_node must not exceed needed_at_node",
            ))
    findings.extend(_check_dma_hazards(loadable, plan.prefetches))
    return findings


def _rows_of(loadable: NcoreLoadable, prefetch: Prefetch) -> RowRange | None:
    base = prefetch.tensor.split("#chunk", 1)[0]
    return loadable.memory_plan.weight_allocs.get(base)


def _check_dma_hazards(
    loadable: NcoreLoadable, prefetches: list[Prefetch]
) -> list[Diagnostic]:
    """A later prefetch into rows whose previous occupant is still unread.

    Chunks of one tiled layer (same ``needed_at_node``) are consumed
    back-to-back within the layer and are serialized by the NKL itself, so
    only prefetches needed by *different* nodes can race.
    """
    findings: list[Diagnostic] = []
    for i, earlier in enumerate(prefetches):
        rows_a = _rows_of(loadable, earlier)
        if rows_a is None:
            continue
        for position, later in enumerate(prefetches[i + 1:], start=i + 1):
            if later.needed_at_node <= earlier.needed_at_node:
                continue
            rows_b = _rows_of(loadable, later)
            if rows_b is None or not _overlap(rows_a, rows_b):
                continue
            if later.issue_at_node < earlier.needed_at_node:
                findings.append(diag(
                    DMA_HAZARD,
                    f"prefetch of {later.tensor!r} (issued before node "
                    f"{later.issue_at_node}) overwrites rows "
                    f"[{rows_b.start}, {rows_b.end}) while {earlier.tensor!r} "
                    f"is still needed at node {earlier.needed_at_node}",
                    artifact=loadable.name, element=later.tensor, index=position,
                ))
    return findings


def _check_kernels(
    loadable: NcoreLoadable
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    node_names = [node.name for node in loadable.segment.nodes]
    kernel_names = [kernel.node_name for kernel in loadable.kernels]
    if kernel_names != node_names:
        findings.append(diag(
            KERNEL_MISMATCH,
            f"loadable lowers nodes {kernel_names!r} but the segment contains "
            f"{node_names!r}",
            artifact=loadable.name, element=loadable.name,
        ))
    return findings


def analyze_loadable(
    graph: Graph,
    loadable: NcoreLoadable,
    config: NcoreConfig | None = None,
    suppress: tuple[str, ...] = (),
) -> AnalysisReport:
    """Run the full Loadable pass stack over one compiled segment."""
    config = config or NcoreConfig()
    report = AnalysisReport()
    report.extend(_check_allocs(loadable, config))
    report.extend(_check_dataflow(graph, loadable))
    report.extend(_check_data_overlaps(graph, loadable))
    report.extend(_check_weights(graph, loadable))
    report.extend(_check_prefetches(loadable))
    if loadable.kernels:  # empty before lowering finishes; nothing to check
        report.extend(_check_kernels(loadable))
    # Whole-schedule happens-before analysis (hazard.* rules) rides the
    # same compile gate as the pairwise checks above.
    report.extend(analyze_loadable_hazards(graph, loadable, config))
    if suppress:
        report = report.suppress(suppress)
    return report


def analyze_compiled_model(
    model: CompiledModel,
    config: NcoreConfig | None = None,
    suppress: tuple[str, ...] = (),
) -> AnalysisReport:
    """Analyze every loadable of a :class:`CompiledModel`."""
    report = AnalysisReport()
    for loadable in model.loadables.values():
        report.merge(analyze_loadable(model.graph, loadable, config, suppress))
    return report
