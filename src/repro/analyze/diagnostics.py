"""The shared diagnostic model of the ``repro.analyze`` pass stack.

Every analyzer rule reports findings as :class:`Diagnostic` values — a rule
id, a severity, a location inside the artifact, a human message and an
optional fix hint — collected into an :class:`AnalysisReport`.  The report
is what the pipeline gate, the ``repro lint`` CLI command and the tests all
consume, so a bad artifact is rejected with the same structured diagnostic
everywhere instead of a mid-simulation ``ExecutionError``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe artifacts that would hang or corrupt real
    silicon (illegal DMA, out-of-bounds SRAM access, malformed graphs) and
    fail the strict pipeline gate.  ``WARNING`` findings are legal but
    almost certainly compiler bugs (dead nodes, duplicate computation).
    ``INFO`` findings are advisory (analysis budget exceeded, coverage
    notes).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalog (documented in docs/static-analysis.md)."""

    id: str
    severity: Severity
    title: str
    description: str


# The rule catalog.  Analyzer modules register their rules at import time;
# ``repro.analyze`` imports them all, so ``RULES`` is complete once the
# package is loaded.
RULES: dict[str, Rule] = {}


def register_rule(id: str, severity: Severity, title: str, description: str) -> Rule:
    """Register one rule in the catalog; returns the :class:`Rule`."""
    if id in RULES:
        raise ValueError(f"duplicate rule id {id!r}")
    rule = Rule(id=id, severity=severity, title=title, description=description)
    RULES[id] = rule
    return rule


@dataclass(frozen=True)
class Location:
    """Where inside an artifact a finding points.

    ``artifact`` names the graph / loadable / program; ``element`` the node,
    tensor, prefetch or instruction inside it; ``index`` an instruction or
    node position when one exists.
    """

    artifact: str = ""
    element: str = ""
    index: int | None = None

    def __str__(self) -> str:
        parts = [part for part in (self.artifact, self.element) if part]
        text = ":".join(parts)
        if self.index is not None:
            text += f"[{self.index}]"
        return text or "<unknown>"


@dataclass(frozen=True)
class Diagnostic:
    """One finding emitted by an analyzer rule."""

    rule: str
    severity: Severity
    location: Location
    message: str
    hint: str = ""

    def to_json(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "artifact": self.location.artifact,
            "element": self.location.element,
            "message": self.message,
        }
        if self.location.index is not None:
            data["index"] = self.location.index
        if self.hint:
            data["hint"] = self.hint
        return data

    def render(self) -> str:
        text = f"{self.severity.value}[{self.rule}] {self.location}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


def diag(
    rule: Rule,
    message: str,
    *,
    artifact: str = "",
    element: str = "",
    index: int | None = None,
    hint: str = "",
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic` for a registered rule.

    ``severity`` overrides the rule's default (used when one rule downgrades
    in specific contexts).
    """
    return Diagnostic(
        rule=rule.id,
        severity=severity if severity is not None else rule.severity,
        location=Location(artifact=artifact, element=element, index=index),
        message=message,
        hint=hint,
    )


@dataclass
class AnalysisReport:
    """All findings of one analyzer run, with filtering and rendering."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, findings: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    def merge(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def suppress(self, rule_ids: Iterable[str]) -> "AnalysisReport":
        """A copy of this report without findings from the given rules."""
        dropped = set(rule_ids)
        return AnalysisReport(
            [d for d in self.diagnostics if d.rule not in dropped]
        )

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding is present."""
        return not self.errors

    @property
    def worst(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=_RANK.get)  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def sorted(self) -> list[Diagnostic]:
        """Diagnostics ordered worst-first, then by location for stability."""
        return sorted(
            self.diagnostics,
            key=lambda d: (-_RANK[d.severity], d.rule, str(d.location)),
        )


class AnalysisError(RuntimeError):
    """Raised by the strict pipeline gate when a report carries errors."""

    def __init__(self, report: AnalysisReport, context: str = "") -> None:
        self.report = report
        self.context = context
        head = f"{context}: " if context else ""
        lines = [d.render() for d in report.sorted() if d.severity is Severity.ERROR]
        summary = f"{head}{len(lines)} error finding(s)"
        super().__init__("\n".join([summary, *lines]))


def enforce(report: AnalysisReport, context: str = "") -> AnalysisReport:
    """The strict gate: raise :class:`AnalysisError` if the report has
    error-severity findings; otherwise return the report unchanged."""
    if not report.ok:
        raise AnalysisError(report, context)
    return report
