"""GIR verifier: structural, shape/dtype, quantization and layout rules.

Extends :meth:`repro.graph.gir.Graph.validate` (which stays a cheap
raise-on-first-violation structural check) with full re-checking of every
declared tensor type, quantization-parameter sanity, layout consistency at
partition-segment edges, and dead/duplicate-node detection — reporting
*all* findings as diagnostics instead of raising on the first.
"""

from __future__ import annotations

import math

from repro.dtypes import ChannelQuantParams, NcoreDType, QuantParams, dtype_info
from repro.graph.gir import Graph, Node, Tensor
from repro.graph.partitioner import NCORE_TARGET, Segment, partition

from repro.analyze.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    diag,
    register_rule,
)
from repro.analyze.shapes import (
    ShapeInferenceError,
    is_float_dtype,
    infer_node_types,
)

UNKNOWN_TENSOR = register_rule(
    "gir.unknown-tensor", Severity.ERROR, "unknown tensor reference",
    "A node input or output names a tensor absent from the graph's tensor table.",
)
DUPLICATE_NODE = register_rule(
    "gir.duplicate-node", Severity.ERROR, "duplicate node name",
    "Two nodes share one name; later passes would silently act on the wrong one.",
)
TOPOLOGY = register_rule(
    "gir.topology", Severity.ERROR, "read before produced",
    "A node reads a tensor no earlier node (or graph input/constant) produced.",
)
MULTI_PRODUCER = register_rule(
    "gir.multi-producer", Severity.ERROR, "tensor produced more than once",
    "Two nodes write the same tensor; the dataflow is ambiguous.",
)
DANGLING_OUTPUT = register_rule(
    "gir.dangling-output", Severity.ERROR, "graph output never produced",
    "A declared graph output is neither produced by a node nor fed externally.",
)
BAD_SIGNATURE = register_rule(
    "gir.bad-op-signature", Severity.ERROR, "inconsistent op inputs",
    "A node's declared input types violate its operator's contract "
    "(wrong rank, channel mismatch, missing inputs or attributes).",
)
SHAPE_MISMATCH = register_rule(
    "gir.shape-mismatch", Severity.ERROR, "declared shape disagrees with propagation",
    "Shape propagation from the declared inputs yields a different output shape "
    "than the one declared.",
)
DTYPE_MISMATCH = register_rule(
    "gir.dtype-mismatch", Severity.ERROR, "declared dtype class disagrees with propagation",
    "The declared output is float where propagation says integer (or vice versa).",
)
QUANT_NODE_CONTRACT = register_rule(
    "gir.quantize-contract", Severity.ERROR, "quantize/dequantize dtype contract",
    "quantize must produce an integer tensor carrying quant params; "
    "dequantize must consume one and produce float32.",
)
DEAD_NODE = register_rule(
    "gir.dead-node", Severity.WARNING, "dead node",
    "The node's outputs reach no consumer and no graph output; "
    "dead-code elimination should have removed it.",
)
DUPLICATE_COMPUTE = register_rule(
    "gir.duplicate-compute", Severity.WARNING, "duplicate computation",
    "Two nodes apply the same op to the same inputs with the same attributes.",
)

QUANT_SCALE = register_rule(
    "qnt.scale", Severity.ERROR, "non-positive or non-finite quantization scale",
    "Affine scales must be positive finite reals; anything else corrupts requantization.",
)
QUANT_ZERO_POINT = register_rule(
    "qnt.zero-point", Severity.ERROR, "zero point outside dtype range",
    "The zero point must be representable in the tensor's own integer dtype.",
)
QUANT_DTYPE = register_rule(
    "qnt.dtype-mismatch", Severity.ERROR, "quant params typed for a different dtype",
    "A tensor's quantization parameters declare a different dtype than the tensor.",
)
QUANT_CHANNELS = register_rule(
    "qnt.channels", Severity.ERROR, "per-channel parameter count mismatch",
    "ChannelQuantParams must carry one (scale, zero point) pair per channel "
    "along the quantized axis.",
)

LAYOUT_DTYPE = register_rule(
    "lay.segment-dtype", Severity.ERROR, "unsupported dtype at an Ncore segment edge",
    "int32 activations cannot cross into an Ncore segment; the datapath has "
    "no 32-bit lane format (int32 is reserved for constants).",
)
LAYOUT_QUANT = register_rule(
    "lay.segment-quant", Severity.ERROR, "quantized edge tensor lacks quant params",
    "A quantized activation crossing a partition-segment edge needs affine "
    "parameters so the other side can (de)quantize it.",
)
LAYOUT_RANK = register_rule(
    "lay.segment-rank", Severity.WARNING, "high-rank tensor at an Ncore segment edge",
    "Tensors of rank > 4 have no defined NHWC row layout in the scratchpad.",
)


def check_structure(graph: Graph) -> list[Diagnostic]:
    """Structural rules: the diagnostics-collecting superset of
    :meth:`Graph.validate`."""
    findings: list[Diagnostic] = []
    name = graph.name
    seen_nodes: set[str] = set()
    produced: set[str] = set(graph.inputs)
    produced.update(n for n, t in graph.tensors.items() if t.is_constant)
    for node in graph.nodes:
        if node.name in seen_nodes:
            findings.append(diag(
                DUPLICATE_NODE, f"node name {node.name!r} appears more than once",
                artifact=name, element=node.name,
                hint="rename one of the nodes; passes look nodes up by name",
            ))
        seen_nodes.add(node.name)
        for tensor_name in node.inputs:
            if tensor_name not in graph.tensors:
                findings.append(diag(
                    UNKNOWN_TENSOR,
                    f"node {node.name!r} reads unknown tensor {tensor_name!r}",
                    artifact=name, element=node.name,
                ))
            elif tensor_name not in produced:
                findings.append(diag(
                    TOPOLOGY,
                    f"node {node.name!r} reads {tensor_name!r} before it is produced",
                    artifact=name, element=node.name,
                    hint="the node list must be topologically ordered",
                ))
        for tensor_name in node.outputs:
            if tensor_name not in graph.tensors:
                findings.append(diag(
                    UNKNOWN_TENSOR,
                    f"node {node.name!r} writes unknown tensor {tensor_name!r}",
                    artifact=name, element=node.name,
                ))
            elif tensor_name in produced and tensor_name not in graph.inputs:
                findings.append(diag(
                    MULTI_PRODUCER,
                    f"tensor {tensor_name!r} is produced more than once "
                    f"(again by node {node.name!r})",
                    artifact=name, element=tensor_name,
                ))
            produced.add(tensor_name)
    for tensor_name in graph.outputs:
        if tensor_name not in produced:
            findings.append(diag(
                DANGLING_OUTPUT,
                f"graph output {tensor_name!r} is never produced",
                artifact=name, element=tensor_name,
            ))
    return findings


def check_types(graph: Graph) -> list[Diagnostic]:
    """Full shape/dtype propagation, re-checking every declaration."""
    findings: list[Diagnostic] = []
    name = graph.name
    for node in graph.nodes:
        if any(t not in graph.tensors for t in node.inputs + node.outputs):
            continue  # reported by check_structure; propagation impossible
        try:
            inferred = infer_node_types(graph, node)
        except ShapeInferenceError as exc:
            findings.append(diag(
                BAD_SIGNATURE, f"{node.op} node {node.name!r}: {exc}",
                artifact=name, element=node.name,
            ))
            continue
        for position, (out_name, expect) in enumerate(zip(node.outputs, inferred, strict=False)):
            declared = graph.tensor(out_name).type
            if declared.shape != expect.shape:
                findings.append(diag(
                    SHAPE_MISMATCH,
                    f"{node.op} node {node.name!r} output {out_name!r} declares "
                    f"shape {declared.shape}, propagation expects {expect.shape}",
                    artifact=name, element=out_name, index=position,
                ))
            elif node.op not in ("quantize", "dequantize") and (
                is_float_dtype(declared.dtype) != is_float_dtype(expect.dtype)
            ):
                findings.append(diag(
                    DTYPE_MISMATCH,
                    f"{node.op} node {node.name!r} output {out_name!r} declares "
                    f"{declared.dtype}, propagation expects the "
                    f"{'float' if is_float_dtype(expect.dtype) else 'integer'} class",
                    artifact=name, element=out_name, index=position,
                ))
        findings.extend(_check_quant_contract(graph, node))
    return findings


def _check_quant_contract(graph: Graph, node: Node) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    if node.op == "quantize":
        out = graph.tensor(node.outputs[0])
        if not isinstance(out.type.dtype, NcoreDType) or dtype_info(out.type.dtype).is_float:
            findings.append(diag(
                QUANT_NODE_CONTRACT,
                f"quantize node {node.name!r} output {out.name!r} has "
                f"non-integer dtype {out.type.dtype}",
                artifact=graph.name, element=node.name,
            ))
        if out.quant is None:
            findings.append(diag(
                QUANT_NODE_CONTRACT,
                f"quantize node {node.name!r} output {out.name!r} carries no "
                "quantization parameters",
                artifact=graph.name, element=node.name,
                hint="attach QuantParams to the output tensor",
            ))
    elif node.op == "dequantize":
        src = graph.tensor(node.inputs[0])
        if src.quant is None:
            findings.append(diag(
                QUANT_NODE_CONTRACT,
                f"dequantize node {node.name!r} input {src.name!r} carries no "
                "quantization parameters",
                artifact=graph.name, element=node.name,
            ))
        out = graph.tensor(node.outputs[0])
        if out.type.dtype != "float32":
            findings.append(diag(
                QUANT_NODE_CONTRACT,
                f"dequantize node {node.name!r} output {out.name!r} must be "
                f"float32, got {out.type.dtype}",
                artifact=graph.name, element=node.name,
            ))
    return findings


def check_quant_params(graph: Graph) -> list[Diagnostic]:
    """Quantization-parameter sanity over every tensor carrying params."""
    findings: list[Diagnostic] = []
    name = graph.name
    for tensor in graph.tensors.values():
        quant = tensor.quant
        if quant is None:
            continue
        if isinstance(quant, ChannelQuantParams):
            findings.extend(_check_channel_quant(name, tensor.name, tensor, quant))
            continue
        findings.extend(_check_tensor_quant(name, tensor.name, tensor, quant))
    return findings


def _check_tensor_quant(
    graph_name: str, tensor_name: str, tensor: Tensor, quant: QuantParams
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    if not (math.isfinite(quant.scale) and quant.scale > 0.0):
        findings.append(diag(
            QUANT_SCALE,
            f"tensor {tensor_name!r} has quantization scale {quant.scale!r}",
            artifact=graph_name, element=tensor_name,
        ))
    dtype = tensor.type.dtype
    if isinstance(dtype, NcoreDType) and not dtype_info(dtype).is_float:
        if quant.dtype is not dtype:
            findings.append(diag(
                QUANT_DTYPE,
                f"tensor {tensor_name!r} is {dtype} but its quant params "
                f"declare {quant.dtype}",
                artifact=graph_name, element=tensor_name,
            ))
        info = dtype_info(dtype)
        if not info.min_value <= quant.zero_point <= info.max_value:
            findings.append(diag(
                QUANT_ZERO_POINT,
                f"tensor {tensor_name!r} zero point {quant.zero_point} is outside "
                f"the {dtype} range [{info.min_value}, {info.max_value}]",
                artifact=graph_name, element=tensor_name,
            ))
    return findings


def _check_channel_quant(
    graph_name: str, tensor_name: str, tensor: Tensor, quant: ChannelQuantParams
) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    bad_scales = [s for s in quant.scales if not (math.isfinite(s) and s > 0.0)]
    if bad_scales:
        findings.append(diag(
            QUANT_SCALE,
            f"tensor {tensor_name!r} has {len(bad_scales)} non-positive or "
            f"non-finite per-channel scale(s)",
            artifact=graph_name, element=tensor_name,
        ))
    shape = tensor.type.shape
    axis = quant.axis % len(shape) if shape else 0
    if shape and quant.num_channels != shape[axis]:
        findings.append(diag(
            QUANT_CHANNELS,
            f"tensor {tensor_name!r} has {shape[axis]} channels along axis "
            f"{axis} but {quant.num_channels} per-channel parameter(s)",
            artifact=graph_name, element=tensor_name,
        ))
    dtype = tensor.type.dtype
    if isinstance(dtype, NcoreDType) and not dtype_info(dtype).is_float:
        info = dtype_info(dtype)
        bad_zps = [z for z in quant.zero_points if not info.min_value <= z <= info.max_value]
        if bad_zps:
            findings.append(diag(
                QUANT_ZERO_POINT,
                f"tensor {tensor_name!r} has {len(bad_zps)} zero point(s) outside "
                f"the {dtype} range",
                artifact=graph_name, element=tensor_name,
            ))
    return findings


def check_liveness(graph: Graph) -> list[Diagnostic]:
    """Dead-node and duplicate-computation detection."""
    findings: list[Diagnostic] = []
    name = graph.name
    outputs = set(graph.outputs)
    # Live = reaches a graph output through consumers (reverse sweep).
    live_tensors = set(outputs)
    for node in reversed(graph.nodes):
        if any(t in live_tensors for t in node.outputs):
            live_tensors.update(node.inputs)
    for node in graph.nodes:
        if not any(t in live_tensors for t in node.outputs):
            findings.append(diag(
                DEAD_NODE,
                f"{node.op} node {node.name!r} reaches no graph output",
                artifact=name, element=node.name,
                hint="run dead-code elimination or mark an output",
            ))
    seen: dict[tuple, str] = {}
    for node in graph.nodes:
        try:
            attr_key = repr(sorted(node.attrs.items()))
        except TypeError:  # unsortable / unhashable attrs: skip the rule
            continue
        key = (node.op, tuple(node.inputs), attr_key)
        if key in seen:
            findings.append(diag(
                DUPLICATE_COMPUTE,
                f"{node.op} node {node.name!r} duplicates node {seen[key]!r} "
                "(same op, inputs and attributes)",
                artifact=name, element=node.name,
                hint="reuse the earlier node's output",
            ))
        else:
            seen[key] = node.name
    return findings


def check_segment_layout(
    graph: Graph, segments: list[Segment] | None = None
) -> list[Diagnostic]:
    """Layout/dtype consistency at partition-segment edges."""
    findings: list[Diagnostic] = []
    name = graph.name
    if segments is None:
        segments = partition(graph)
    checked: set[str] = set()
    for index, segment in enumerate(segments):
        if segment.target != NCORE_TARGET:
            continue
        boundary = segment.input_tensors(graph) + segment.output_tensors(graph)
        for tensor_name in boundary:
            if tensor_name in checked:
                continue
            checked.add(tensor_name)
            tensor = graph.tensor(tensor_name)
            dtype = tensor.type.dtype
            if dtype == "int32":
                findings.append(diag(
                    LAYOUT_DTYPE,
                    f"int32 tensor {tensor_name!r} crosses the edge of Ncore "
                    f"segment {index}",
                    artifact=name, element=tensor_name, index=index,
                    hint="keep int32 index math on x86 or narrow the tensor",
                ))
            elif isinstance(dtype, NcoreDType) and not dtype_info(dtype).is_float:
                if tensor.quant is None:
                    findings.append(diag(
                        LAYOUT_QUANT,
                        f"quantized tensor {tensor_name!r} crosses the edge of "
                        f"Ncore segment {index} without quant params",
                        artifact=name, element=tensor_name, index=index,
                    ))
            if len(tensor.type.shape) > 4:
                findings.append(diag(
                    LAYOUT_RANK,
                    f"rank-{len(tensor.type.shape)} tensor {tensor_name!r} at the "
                    f"edge of Ncore segment {index} has no defined row layout",
                    artifact=name, element=tensor_name, index=index,
                ))
    return findings


def analyze_graph(
    graph: Graph,
    segments: list[Segment] | None = None,
    suppress: tuple[str, ...] = (),
) -> AnalysisReport:
    """Run the full GIR pass stack over one graph."""
    report = AnalysisReport()
    structural = check_structure(graph)
    report.extend(structural)
    # Type propagation and layout need a resolvable tensor table; skip them
    # when the structure itself is broken to avoid cascading KeyErrors.
    if not any(d.rule == UNKNOWN_TENSOR.id for d in structural):
        report.extend(check_types(graph))
        report.extend(check_quant_params(graph))
        report.extend(check_liveness(graph))
        if not any(d.severity is Severity.ERROR for d in structural):
            report.extend(check_segment_layout(graph, segments))
    if suppress:
        report = report.suppress(suppress)
    return report
