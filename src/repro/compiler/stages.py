"""Compilation stages and the context they transform.

The paper's toolflow (section V-B, Fig. 8) is one staged pipeline: GCL
graph optimization, delegate partitioning, NKL lowering and scratchpad
memory planning feed a single Ncore Loadable.  This module factors that
flow into named, registered :class:`Stage` objects over a shared
:class:`CompilerContext`, so pipelines (``repro.compiler.pipeline``) can
compose, reorder and instrument them — every stage reports change-stats
(nodes folded, segments cut, SRAM bytes planned) that the driver records
on the context and emits as ``repro.obs`` spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.graph.gir import Graph
from repro.graph.loadable import CompiledModel, NcoreLoadable
from repro.graph.partitioner import Segment, ncore_coverage, partition
from repro.graph.passes import PassManager, default_pipeline
from repro.graph.planner import MemoryPlan, plan_memory
from repro.ncore.config import NcoreConfig
from repro.nkl.lower import lower_segment

if TYPE_CHECKING:
    from repro.ncore.codegen import MacroKernelSet


class CompilerError(RuntimeError):
    """A stage was asked to run against a context it cannot handle."""


@dataclass
class StageStats:
    """What one stage did: wall time plus stage-specific change counts."""

    stage: str
    seconds: float = 0.0
    changes: dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        parts = ", ".join(f"{key}={value}" for key, value in self.changes.items())
        return f"{self.stage}: {parts} ({self.seconds * 1e3:.1f} ms)"


@dataclass
class CompilerContext:
    """Everything one compilation owns, threaded through the stages.

    Stages read and extend this context in order: ``optimize`` rewrites
    ``graph`` in place (the driver hands it a private copy unless the
    caller opted into ``in_place``), ``partition`` fills ``segments``,
    ``plan`` fills ``memory_plans``, ``lower`` fills ``loadables`` and
    ``finalize`` assembles ``model``.
    """

    graph: Graph
    config: NcoreConfig
    name: str
    verify: bool = True
    pipeline_id: str = "custom"
    collect_ir: bool = False
    pass_manager: PassManager | None = None
    segments: list[Segment] = field(default_factory=list)
    memory_plans: dict[int, MemoryPlan] = field(default_factory=dict)
    loadables: dict[int, NcoreLoadable] = field(default_factory=dict)
    macro_kernels: "MacroKernelSet | None" = None
    model: CompiledModel | None = None
    stats: list[StageStats] = field(default_factory=list)
    snapshots: dict[str, str] = field(default_factory=dict)

    def stage_stats(self, stage: str) -> StageStats | None:
        """The recorded stats of the named stage (last run wins)."""
        for stats in reversed(self.stats):
            if stats.stage == stage:
                return stats
        return None


StageFn = Callable[[CompilerContext], dict[str, Any]]


@dataclass(frozen=True)
class Stage:
    """One named pipeline step; ``fn`` mutates the context and returns
    its change-stats dictionary."""

    name: str
    fn: StageFn
    description: str = ""

    def run(self, ctx: CompilerContext) -> dict[str, Any]:
        return self.fn(ctx)


# ----------------------------------------------------------------------
# Built-in stages (the section V-B flow)
# ----------------------------------------------------------------------


def _run_optimize(
    ctx: CompilerContext, manager_factory: Callable[[], PassManager] | None = None
) -> dict[str, Any]:
    """GCL graph optimization: run a pass pipeline to its fixed point."""
    manager = ctx.pass_manager
    if manager is None:
        manager = manager_factory() if manager_factory is not None else default_pipeline()
    nodes_before = len(ctx.graph.nodes)
    sweeps = manager.run(ctx.graph)
    changes: dict[str, Any] = {
        "sweeps": sweeps,
        "nodes_before": nodes_before,
        "nodes_after": len(ctx.graph.nodes),
        "nodes_removed": nodes_before - len(ctx.graph.nodes),
    }
    run_stats = manager.last_stats
    if run_stats is not None:
        changes["reached_fixed_point"] = run_stats.reached_fixed_point
        changes["pass_changes"] = {
            name: count for name, count in run_stats.pass_changes.items() if count
        }
        changes["dead_tensors_pruned"] = run_stats.dead_tensors_pruned
    return changes


def _run_partition(ctx: CompilerContext) -> dict[str, Any]:
    """Delegate-style split into maximal Ncore / x86 segments (Fig. 9)."""
    ctx.segments = partition(ctx.graph)
    ncore = sum(1 for s in ctx.segments if s.target == "ncore")
    return {
        "segments": len(ctx.segments),
        "ncore_segments": ncore,
        "x86_segments": len(ctx.segments) - ncore,
        "mac_coverage": round(ncore_coverage(ctx.graph, ctx.segments), 4),
    }


def _run_verify(ctx: CompilerContext) -> dict[str, Any]:
    """Inter-stage gate: the ``repro.analyze`` GIR verifier.

    Honors ``ctx.verify`` — a pipeline may carry the gate while a caller
    opts out, mirroring ``compile_model(verify=False)``.
    """
    if not ctx.verify:
        return {"skipped": True}
    from repro.analyze import analyze_graph, enforce

    report = analyze_graph(ctx.graph, segments=ctx.segments or None)
    enforce(report, context=ctx.name)
    return {"findings": len(report.diagnostics), "ok": report.ok}


def _run_plan(ctx: CompilerContext) -> dict[str, Any]:
    """Scratchpad memory planning for every Ncore segment."""
    if not ctx.segments:
        raise CompilerError("plan stage needs partitioned segments; run 'partition' first")
    data_rows = 0
    weight_rows = 0
    pinned = 0
    prefetches = 0
    planned = 0
    for index, segment in enumerate(ctx.segments):
        if segment.target != "ncore":
            continue
        plan = plan_memory(ctx.graph, segment, ctx.config)
        ctx.memory_plans[index] = plan
        planned += 1
        data_rows += plan.data_rows_used
        weight_rows += plan.weight_rows_used
        pinned += 1 if plan.weights_pinned else 0
        prefetches += len(plan.prefetches)
    return {
        "planned_segments": planned,
        "data_rows": data_rows,
        "weight_rows": weight_rows,
        "sram_bytes_planned": (data_rows + weight_rows) * ctx.config.row_bytes,
        "pinned_segments": pinned,
        "streamed_segments": planned - pinned,
        "prefetches": prefetches,
    }


def _run_lower(ctx: CompilerContext) -> dict[str, Any]:
    """NKL lowering: every Ncore segment becomes a Loadable.

    Consumes the ``plan`` stage's memory plans when present (the staged
    path); falls back to planning inside ``lower_segment`` otherwise, so
    a custom pipeline without an explicit plan stage still compiles.
    """
    if not ctx.segments:
        raise CompilerError("lower stage needs partitioned segments; run 'partition' first")
    kernels = 0
    compute_cycles = 0
    weight_image_bytes = 0
    for index, segment in enumerate(ctx.segments):
        if segment.target != "ncore":
            continue
        loadable = lower_segment(
            ctx.graph,
            segment,
            ctx.config,
            name=f"{ctx.name}_seg{index}",
            verify=ctx.verify,
            plan=ctx.memory_plans.get(index),
        )
        ctx.loadables[index] = loadable
        kernels += len(loadable.kernels)
        compute_cycles += loadable.compute_cycles
        weight_image_bytes += loadable.weight_image_bytes
    return {
        "loadables": len(ctx.loadables),
        "kernels": kernels,
        "compute_cycles": compute_cycles,
        "weight_image_bytes": weight_image_bytes,
    }


def _run_codegen(ctx: CompilerContext) -> dict[str, Any]:
    """Tier-3 AOT codegen: lower segments to macro-kernel variants.

    Produces the :class:`repro.ncore.codegen.MacroKernelSet` sidecar the
    driver stores in the compile cache next to the model.  Segments with
    no macro-kernel form (float regions, x86-only ops) are recorded with
    a reason and keep the per-node interpreter at runtime — coverage is
    best-effort, bit-exactness is not.
    """
    if not ctx.segments:
        raise CompilerError("codegen stage needs partitioned segments; run 'partition' first")
    # Imported lazily: repro.ncore.codegen pulls in the runtime kernels,
    # which import back into repro.compiler during package init.
    from repro.ncore.codegen import codegen_model

    stats: dict[str, Any] = {}
    kset = codegen_model(
        ctx.graph, ctx.segments, ctx.loadables, ctx.name, stats=stats
    )
    ctx.macro_kernels = kset
    stats.setdefault("kernels", 0)
    stats.setdefault("uncovered_segments", 0)
    # Float-region coverage: how much of the graph's float family (bf16
    # LSTM region, x86 float tails) the Tier-3 artifacts actually cover.
    stats["coverage"] = round(kset.coverage_fraction(len(ctx.segments)), 4)
    float_steps = sum(
        sum(1 for step in variant.steps if _is_float_step(step))
        for kernel in kset.kernels.values()
        for variant in kernel.variants
    )
    if float_steps:
        stats["float_steps"] = float_steps
    seqfuse = sum(
        1
        for kernel in kset.kernels.values()
        for variant in kernel.variants
        if variant.strategy == "seqfuse"
    )
    if seqfuse:
        stats["seqfuse_variants"] = seqfuse
    return stats


def _is_float_step(step: Any) -> bool:
    from repro.ncore.codegen import CellFuseStep, FloatStep, SeqFuseStep

    return isinstance(step, (FloatStep, SeqFuseStep, CellFuseStep))


def _run_finalize(ctx: CompilerContext) -> dict[str, Any]:
    """Assemble the :class:`CompiledModel` from the staged artifacts."""
    if not ctx.segments:
        raise CompilerError("finalize stage needs partitioned segments")
    model = CompiledModel(name=ctx.name, graph=ctx.graph, segments=ctx.segments)
    model.loadables.update(ctx.loadables)
    ctx.model = model
    return {
        "segments": len(model.segments),
        "ncore_segments": len(model.ncore_segments),
        "x86_segments": len(model.x86_segments),
    }


def optimize_stage(
    manager_factory: Callable[[], PassManager] | None = None,
    description: str = "GCL graph optimization to a fixed point",
) -> Stage:
    """An ``optimize`` stage bound to a specific pass-pipeline factory
    (presets use this to differ without new stage names)."""

    def fn(ctx: CompilerContext) -> dict[str, Any]:
        return _run_optimize(ctx, manager_factory)

    return Stage("optimize", fn, description)


# ----------------------------------------------------------------------
# Stage registry
# ----------------------------------------------------------------------

_STAGES: dict[str, Stage] = {}


def register_stage(stage: Stage, replace: bool = False) -> Stage:
    """Register a stage under its name for name-based pipeline composition."""
    if stage.name in _STAGES and not replace:
        raise CompilerError(f"stage {stage.name!r} is already registered")
    _STAGES[stage.name] = stage
    return stage


def get_stage(name: str) -> Stage:
    try:
        return _STAGES[name]
    except KeyError:
        raise CompilerError(
            f"unknown stage {name!r}; registered: {sorted(_STAGES)}"
        ) from None


def available_stages() -> list[str]:
    return sorted(_STAGES)


register_stage(optimize_stage())
register_stage(Stage("partition", _run_partition, "delegate split into Ncore/x86 segments"))
register_stage(Stage("verify", _run_verify, "repro.analyze GIR verification gate"))
register_stage(Stage("plan", _run_plan, "scratchpad memory planning"))
register_stage(Stage("lower", _run_lower, "NKL lowering to Ncore Loadables"))
register_stage(Stage("codegen", _run_codegen, "Tier-3 AOT macro-kernel codegen"))
register_stage(Stage("finalize", _run_finalize, "assemble the CompiledModel"))


__all__ = [
    "CompilerContext",
    "CompilerError",
    "Stage",
    "StageFn",
    "StageStats",
    "available_stages",
    "get_stage",
    "optimize_stage",
    "register_stage",
]
