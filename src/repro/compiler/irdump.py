"""Textual IR snapshots and stage-to-stage diffs (``--dump-ir``).

The dump is a deterministic, line-oriented rendering of a
:class:`~repro.compiler.stages.CompilerContext`: the graph's node listing
(with shapes, dtypes and attributes), then whatever later-stage artifacts
exist — segment placement, memory plans, lowered kernels.  Because it is
line-oriented, two snapshots diff cleanly with :func:`ir_diff`, which is
how ``repro compile --dump-ir`` shows what each stage changed.
"""

from __future__ import annotations

import difflib
from typing import TYPE_CHECKING, Any

from repro.graph.gir import Graph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.compiler.stages import CompilerContext


def _format_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def dump_graph(graph: Graph) -> str:
    """The node listing: one line per node, stable across processes."""
    lines = [f"graph {graph.name!r}: {len(graph.nodes)} nodes, "
             f"{len(graph.tensors)} tensors"]
    for name in graph.inputs:
        tensor = graph.tensor(name)
        dtype = tensor.type.dtype
        dtype_name = dtype if isinstance(dtype, str) else dtype.value
        lines.append(f"  input  {name}: {tuple(tensor.shape)} {dtype_name}")
    for index, node in enumerate(graph.nodes):
        out = graph.tensor(node.outputs[0])
        dtype = out.type.dtype
        dtype_name = dtype if isinstance(dtype, str) else dtype.value
        attrs = ""
        if node.attrs:
            rendered = ", ".join(
                f"{key}={_format_attr(value)}"
                for key, value in sorted(node.attrs.items())
            )
            attrs = f"  {{{rendered}}}"
        inputs = ", ".join(node.inputs)
        lines.append(
            f"  [{index:>3}] {node.op:<18} {node.name}({inputs}) -> "
            f"{node.outputs[0]}: {tuple(out.shape)} {dtype_name}{attrs}"
        )
    for name in graph.outputs:
        lines.append(f"  output {name}")
    return "\n".join(lines)


def dump_context(ctx: "CompilerContext") -> str:
    """Graph listing plus every staged artifact present on the context."""
    sections = [dump_graph(ctx.graph)]
    if ctx.segments:
        lines = [f"segments: {len(ctx.segments)}"]
        for index, segment in enumerate(ctx.segments):
            first = segment.nodes[0].name if segment.nodes else "-"
            last = segment.nodes[-1].name if segment.nodes else "-"
            lines.append(
                f"  [{index}] {segment.target:<5} {len(segment.nodes):>3} nodes"
                f"  {first} .. {last}"
            )
        sections.append("\n".join(lines))
    if ctx.memory_plans:
        lines = ["memory plans:"]
        for index in sorted(ctx.memory_plans):
            plan = ctx.memory_plans[index]
            mode = "pinned" if plan.weights_pinned else "streamed"
            lines.append(
                f"  [{index}] data rows {plan.data_rows_used:>5}"
                f"  weight rows {plan.weight_rows_used:>5}"
                f"  weights {mode}  prefetches {len(plan.prefetches)}"
            )
        sections.append("\n".join(lines))
    if ctx.loadables:
        lines = ["loadables:"]
        for index in sorted(ctx.loadables):
            loadable = ctx.loadables[index]
            lines.append(
                f"  [{index}] {loadable.name}: {len(loadable.kernels)} kernels, "
                f"{loadable.compute_cycles} compute cycles, "
                f"{loadable.weight_image_bytes} weight bytes"
            )
        sections.append("\n".join(lines))
    if ctx.macro_kernels is not None:
        kset = ctx.macro_kernels
        lines = [
            f"macro-kernels: {kset.covered_segments} kernels, "
            f"{kset.variant_count} variants, {len(kset.uncovered)} uncovered, "
            f"coverage {kset.coverage_fraction():.2f}"
        ]
        for index in sorted(kset.kernels):
            kernel = kset.kernels[index]
            for variant in kernel.variants:
                steps = ", ".join(step.op for step in variant.steps)
                lines.append(
                    f"  [{index}] {kernel.name} variant {variant.strategy:<8}"
                    f" {len(variant.steps):>3} steps"
                    f"  {kernel.compute_cycles} compute cycles  [{steps}]"
                )
        for index in sorted(kset.uncovered):
            lines.append(f"  [{index}] uncovered: {kset.uncovered[index]}")
        for reason, count in sorted(kset.uncovered_reason_counts().items()):
            lines.append(f"  uncovered reason x{count}: {reason}")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def ir_diff(before: str, after: str, before_name: str = "before",
            after_name: str = "after") -> str:
    """Unified diff between two IR snapshots ('' when identical)."""
    lines = difflib.unified_diff(
        before.splitlines(), after.splitlines(),
        fromfile=before_name, tofile=after_name, lineterm="",
    )
    return "\n".join(lines)


__all__ = ["dump_context", "dump_graph", "ir_diff"]
