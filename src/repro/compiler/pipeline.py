"""Named compilation pipelines and the instrumented stage executor.

A :class:`Pipeline` is an ordered tuple of registered stages with an
identity that participates in the compile-cache key — two compiles of the
same graph under different pipelines are different artifacts.  Presets:

- ``O0`` — no graph optimization: partition, verify, plan, lower.
- ``O1`` — structural fusions only (pad/BN/bias/activation), single
  bounded sweep; the cheap-compile preset.
- ``O2`` — the full GCL pipeline (fusions + constant folding + CSE +
  DCE) to a fixed point, plus Tier-3 AOT macro-kernel codegen; the
  paper's submission flow and the default.

``Pipeline.run`` is where cross-cutting instrumentation lives: every
stage executes under a ``repro.obs`` span on the ``compiler`` track, its
change-stats land on the context (and on the span), and — when the
context collects IR — a textual snapshot is taken after each stage for
``--dump-ir`` and the golden-IR tests.
"""

from __future__ import annotations

import time

from repro.graph.passes import PassManager, default_pipeline
from repro.graph.passes import fold_batch_norm, fuse_activations, fuse_bias_add, fuse_pad
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.compiler.irdump import dump_context
from repro.compiler.stages import (
    CompilerContext,
    CompilerError,
    Stage,
    StageStats,
    get_stage,
    optimize_stage,
)

#: Snapshot name for the pre-pipeline state of the graph.
INPUT_SNAPSHOT = "input"


class Pipeline:
    """An ordered, identified sequence of compilation stages."""

    def __init__(self, id: str, stages: tuple[Stage, ...] | list[Stage],
                 description: str = "") -> None:
        self.id = id
        self.stages = tuple(stages)
        self.description = description
        if not self.stages:
            raise CompilerError(f"pipeline {id!r} has no stages")

    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]

    @property
    def mutates_graph(self) -> bool:
        """Whether any stage rewrites the input graph (optimize does)."""
        return any(stage.name == "optimize" for stage in self.stages)

    @classmethod
    def from_stage_names(cls, id: str, names: list[str] | tuple[str, ...],
                         description: str = "") -> "Pipeline":
        """Compose a custom pipeline from registered stage names."""
        return cls(id, tuple(get_stage(name) for name in names), description)

    # ------------------------------------------------------------------

    def run(self, ctx: CompilerContext) -> CompilerContext:
        """Execute every stage in order with spans, stats and snapshots."""
        tracer = get_tracer()
        metrics = get_metrics()
        ctx.pipeline_id = self.id
        if ctx.collect_ir and INPUT_SNAPSHOT not in ctx.snapshots:
            ctx.snapshots[INPUT_SNAPSHOT] = dump_context(ctx)
        for stage in self.stages:
            start = time.perf_counter()
            with tracer.span(
                f"compiler.{stage.name}", track="compiler",
                model=ctx.name, pipeline=self.id,
            ) as span:
                changes = stage.run(ctx)
                span.set(**changes)
            seconds = time.perf_counter() - start
            ctx.stats.append(StageStats(stage.name, seconds, changes))
            if metrics.enabled:
                metrics.counter(f"compiler.stage.{stage.name}.runs").inc()
                metrics.histogram(
                    f"compiler.stage.{stage.name}.seconds", unit="s"
                ).observe(seconds)
            if ctx.collect_ir:
                ctx.snapshots[stage.name] = dump_context(ctx)
        return ctx

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Pipeline({self.id!r}, stages={self.stage_names()})"


def _light_manager() -> PassManager:
    """O1: the structural fusions, one bounded sweep, no folding/CSE."""
    return PassManager(
        [fuse_pad, fold_batch_norm, fuse_bias_add, fuse_activations],
        max_sweeps=2,
    )


_BACKEND = ("partition", "verify", "plan", "lower", "finalize")

#: The O2 backend additionally runs Tier-3 codegen after lowering, so
#: the cycle-exact Loadable costs exist to stamp onto each MacroKernel.
_BACKEND_O2 = ("partition", "verify", "plan", "lower", "codegen", "finalize")

_PIPELINES: dict[str, Pipeline] = {}


def register_pipeline(pipeline: Pipeline, replace: bool = False) -> Pipeline:
    if pipeline.id in _PIPELINES and not replace:
        raise CompilerError(f"pipeline {pipeline.id!r} is already registered")
    _PIPELINES[pipeline.id] = pipeline
    return pipeline


def get_pipeline(spec: str | Pipeline) -> Pipeline:
    """Resolve a pipeline by instance, id, or the ``default`` alias."""
    if isinstance(spec, Pipeline):
        return spec
    key = "O2" if spec == "default" else spec
    try:
        return _PIPELINES[key]
    except KeyError:
        raise CompilerError(
            f"unknown pipeline {spec!r}; registered: {sorted(_PIPELINES)} "
            "(or pass a Pipeline instance)"
        ) from None


def available_pipelines() -> list[str]:
    return sorted(_PIPELINES)


register_pipeline(Pipeline(
    "O0",
    tuple(get_stage(name) for name in _BACKEND),
    "no graph optimization (pre-optimized or raw graphs)",
))
register_pipeline(Pipeline(
    "O1",
    (optimize_stage(_light_manager, "structural fusions, single sweep"),)
    + tuple(get_stage(name) for name in _BACKEND),
    "structural fusions only, bounded sweeps",
))
register_pipeline(Pipeline(
    "O2",
    (optimize_stage(default_pipeline, "full GCL pipeline to fixed point"),)
    + tuple(get_stage(name) for name in _BACKEND_O2),
    "full GCL optimization to a fixed point + Tier-3 codegen (default)",
))


__all__ = [
    "INPUT_SNAPSHOT",
    "Pipeline",
    "available_pipelines",
    "get_pipeline",
    "register_pipeline",
]
