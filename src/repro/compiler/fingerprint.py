"""Deterministic content fingerprints for compile-cache keys.

A compile is a pure function of (graph structure + constant data,
Ncore configuration, pipeline identity, verification mode).  This module
digests each ingredient into a stable hex string so that
:class:`~repro.compiler.cache.CompileCache` can address compiled
artifacts by content: two structurally identical graphs — however they
were built — share a key, and any change to a weight byte, a node
attribute, the :class:`~repro.ncore.config.NcoreConfig` or the pipeline
invalidates it.

Fingerprints are computed *before* any optimization pass touches the
graph, so the key identifies what the caller handed in, not what the
pipeline made of it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

from repro.dtypes import NcoreDType
from repro.graph.gir import Graph
from repro.ncore.config import NcoreConfig

#: Bump to invalidate every existing cache entry (artifact layout change).
CACHE_FORMAT_VERSION = 1


def _canonical(value: Any) -> Any:
    """Reduce an attribute/quant value to a JSON-stable representation."""
    if isinstance(value, NcoreDType):
        return value.value
    if isinstance(value, (tuple, list)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(val) for key, val in sorted(value.items())}
    if isinstance(value, np.ndarray):  # array-valued attrs digest by content
        return {
            "__ndarray__": hashlib.sha256(
                np.ascontiguousarray(value).tobytes()
            ).hexdigest(),
            "shape": list(value.shape),
            "dtype": str(value.dtype),
        }
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    return value


def _quant_spec(quant: Any) -> Any:
    """Canonical form of a QuantParams / ChannelQuantParams (or None)."""
    if quant is None:
        return None
    if hasattr(quant, "scales"):  # per-channel
        return {
            "per_channel": True,
            "scales": [float(s) for s in quant.scales],
            "zero_points": [int(z) for z in quant.zero_points],
            "axis": int(quant.axis),
            "dtype": quant.dtype.value,
        }
    return {
        "scale": float(quant.scale),
        "zero_point": int(quant.zero_point),
        "dtype": quant.dtype.value,
    }


def _tensor_digest(tensor: Any) -> str | None:
    """SHA-256 of one constant's bytes, memoized on the tensor.

    The memo is stamped with the array's identity/shape/dtype, so
    reassigning ``tensor.data`` (how every pass rewrites constants)
    recomputes it.  When the array owns its memory it is frozen
    (``writeable = False``) as the memo is taken — an in-place mutation
    afterwards raises instead of silently serving a stale digest; arrays
    that cannot be frozen (views) are hashed fresh every time.
    """
    data = tensor.data
    if data is None:
        return None
    stamp = (id(data), data.nbytes, str(data.dtype), data.shape)
    memo = tensor._content_digest
    if memo is not None and memo[0] == stamp:
        return memo[1]
    contiguous = np.ascontiguousarray(data)
    digest = hashlib.sha256()
    digest.update(str(contiguous.dtype).encode("utf-8"))
    digest.update(memoryview(contiguous).cast("B"))
    hexdigest = digest.hexdigest()
    if contiguous is data:
        try:
            data.flags.writeable = False
        except ValueError:
            pass  # a view we don't own: never memoize
        else:
            tensor._content_digest = (stamp, hexdigest)
    return hexdigest


def fingerprint_graph(graph: Graph) -> str:
    """SHA-256 digest of a graph's structure plus its constant data.

    Covers: inputs/outputs, every tensor's shape/dtype/quant parameters,
    every node's op/wiring/attributes (in topological order), and the raw
    bytes of every constant (memoized per tensor, see
    :func:`_tensor_digest`).  Excludes the graph's display ``name`` so a
    rename never defeats the cache.
    """
    structure: dict[str, Any] = {
        "inputs": list(graph.inputs),
        "outputs": list(graph.outputs),
        "tensors": {
            name: {
                "shape": list(tensor.type.shape),
                "dtype": _canonical(tensor.type.dtype),
                "quant": _quant_spec(tensor.quant),
                "constant": tensor.is_constant,
            }
            for name, tensor in sorted(graph.tensors.items())
        },
        "nodes": [
            {
                "name": node.name,
                "op": node.op,
                "inputs": list(node.inputs),
                "outputs": list(node.outputs),
                "attrs": {
                    key: _canonical(value)
                    for key, value in sorted(node.attrs.items())
                },
            }
            for node in graph.nodes
        ],
    }
    digest = hashlib.sha256()
    digest.update(json.dumps(structure, sort_keys=True).encode("utf-8"))
    for name, tensor in sorted(graph.tensors.items()):
        content = _tensor_digest(tensor)
        if content is None:
            continue
        digest.update(name.encode("utf-8"))
        digest.update(content.encode("utf-8"))
    return digest.hexdigest()


def fingerprint_config(config: NcoreConfig) -> str:
    """SHA-256 digest of every architectural parameter of an Ncore."""
    fields = dataclasses.asdict(config)
    digest = hashlib.sha256()
    digest.update(json.dumps(fields, sort_keys=True, default=str).encode("utf-8"))
    return digest.hexdigest()


def compile_key(
    graph: Graph,
    config: NcoreConfig,
    pipeline_id: str,
    *,
    name: str | None = None,
    verify: bool = True,
) -> str:
    """The content address of one compilation.

    ``name`` participates because it is baked into the artifact (loadable
    names are derived from it); ``verify`` participates because a
    verified and an unverified compile are different contracts.
    """
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_FORMAT_VERSION}".encode("utf-8"))
    digest.update(fingerprint_graph(graph).encode("utf-8"))
    digest.update(fingerprint_config(config).encode("utf-8"))
    digest.update(pipeline_id.encode("utf-8"))
    digest.update((name or graph.name).encode("utf-8"))
    digest.update(b"verified" if verify else b"unverified")
    return digest.hexdigest()


__all__ = [
    "CACHE_FORMAT_VERSION",
    "compile_key",
    "fingerprint_config",
    "fingerprint_graph",
]
