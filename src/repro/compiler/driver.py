"""The unified compile driver: one entry point for the section V-B flow.

:func:`compile_graph` owns the whole path *graph passes -> partition ->
analyze-verify -> NKL lowering -> memory plan -> CompiledModel*:

- it fingerprints the input graph *before* any pass mutates it and
  serves byte-identical recompiles from the content-addressed
  :class:`~repro.compiler.cache.CompileCache` (the compile-once/run-many
  front end MLPerf and serving runs depend on);
- unless the caller opts into ``in_place``, optimization runs on a
  private copy, so handing a graph to the compiler never rewrites it;
- every stage runs under a ``repro.obs`` span with change-stats recorded
  on the returned context, and ``collect_ir`` captures per-stage textual
  IR snapshots for ``repro compile --dump-ir``.

``repro.runtime.compile_model`` is the thin backwards-compatible facade
over this function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.graph.gir import Graph
from repro.graph.loadable import CompiledModel
from repro.graph.passes import PassManager
from repro.ncore.config import NcoreConfig
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.compiler.cache import CompileCache, get_compile_cache
from repro.compiler.fingerprint import compile_key
from repro.compiler.pipeline import Pipeline, get_pipeline
from repro.compiler.stages import CompilerContext, CompilerError, StageStats

if TYPE_CHECKING:
    from repro.ncore.codegen import MacroKernelSet

#: Compile-cache sidecar kind for Tier-3 macro-kernel sets (kept in sync
#: with repro.ncore.codegen.CODEGEN_ARTIFACT_KIND without importing it —
#: the codegen module pulls in the runtime kernels, which import back
#: into this package during init).
_CODEGEN_KIND = "codegen"


class _UseDefaultCache:
    """Sentinel: 'use the process-wide cache' (distinct from None = off)."""


USE_DEFAULT_CACHE = _UseDefaultCache()


@dataclass
class CompileResult:
    """One compilation's outcome: the artifact plus its provenance."""

    model: CompiledModel
    key: str
    pipeline_id: str
    cache_hit: bool = False
    context: CompilerContext | None = None
    #: Tier-3 macro-kernel sidecar (None when the pipeline has no codegen
    #: stage, e.g. O0/O1, or when a cache hit found no stored sidecar).
    macro_kernels: "MacroKernelSet | None" = None

    @property
    def stats(self) -> list[StageStats]:
        """Per-stage change-stats (empty on a cache hit — nothing ran)."""
        return self.context.stats if self.context is not None else []

    @property
    def snapshots(self) -> dict[str, str]:
        return self.context.snapshots if self.context is not None else {}


def compile_graph(
    graph: Graph,
    *,
    config: NcoreConfig | None = None,
    pipeline: str | Pipeline = "default",
    name: str | None = None,
    verify: bool = True,
    in_place: bool = False,
    cache: CompileCache | None | _UseDefaultCache = USE_DEFAULT_CACHE,
    collect_ir: bool = False,
    pass_manager: PassManager | None = None,
) -> CompileResult:
    """Compile ``graph`` through a named (or custom) staged pipeline.

    ``cache`` defaults to the process-wide compile cache; pass ``None``
    to force a full compile.  ``collect_ir`` bypasses the cache (its
    point is to watch the stages run) and fills per-stage snapshots.
    ``in_place`` opts back into optimizing the caller's graph object
    directly (the historical ``compile_model`` behaviour).
    """
    pipeline_obj = get_pipeline(pipeline)
    config = config if config is not None else NcoreConfig()
    effective_name = name if name is not None else graph.name

    # Content address first, on the unmutated input graph, so the key is
    # stable no matter what the optimize stage rewrites.
    key = compile_key(
        graph, config, pipeline_obj.id, name=effective_name, verify=verify
    )
    resolved_cache = (
        get_compile_cache() if isinstance(cache, _UseDefaultCache) else cache
    )
    tracer = get_tracer()
    metrics = get_metrics()
    if resolved_cache is not None and not collect_ir:
        cached = resolved_cache.lookup(key)
        if cached is not None:
            if tracer.enabled:
                tracer.instant(
                    "compiler.cache.hit", track="compiler",
                    model=effective_name, pipeline=pipeline_obj.id,
                    key=key[:16],
                )
            sidecar = resolved_cache.lookup_artifact(key, _CODEGEN_KIND)
            return CompileResult(
                model=cached, key=key, pipeline_id=pipeline_obj.id, cache_hit=True,
                macro_kernels=sidecar,  # type: ignore[arg-type]
            )

    working = graph
    if pipeline_obj.mutates_graph and not in_place:
        working = graph.copy()
    ctx = CompilerContext(
        graph=working,
        config=config,
        name=effective_name,
        verify=verify,
        pipeline_id=pipeline_obj.id,
        collect_ir=collect_ir,
        pass_manager=pass_manager,
    )
    with tracer.span(
        "compiler.compile", track="compiler",
        model=effective_name, pipeline=pipeline_obj.id,
    ) as span:
        pipeline_obj.run(ctx)
        model = ctx.model
        if model is None:
            raise CompilerError(
                f"pipeline {pipeline_obj.id!r} produced no CompiledModel; "
                "it must end with a 'finalize' stage"
            )
        model.compile_info = {
            "key": key,
            "pipeline": pipeline_obj.id,
            "verified": verify,
            "stages": {s.stage: dict(s.changes) for s in ctx.stats},
        }
        span.set(
            segments=len(model.segments),
            ncore_segments=len(model.ncore_segments),
            x86_segments=len(model.x86_segments),
            key=key[:16],
        )
    if metrics.enabled:
        metrics.counter("compiler.compiles").inc()
    if resolved_cache is not None:
        resolved_cache.store(key, model)
        if ctx.macro_kernels is not None:
            resolved_cache.store_artifact(key, _CODEGEN_KIND, ctx.macro_kernels)
    return CompileResult(
        model=model, key=key, pipeline_id=pipeline_obj.id,
        cache_hit=False, context=ctx, macro_kernels=ctx.macro_kernels,
    )


def optimize_graph(
    graph: Graph,
    *,
    manager: PassManager | None = None,
    in_place: bool = False,
) -> Graph:
    """Run just the GCL optimize stage (spans + stats, no lowering).

    The front-end half of the driver for callers that optimize a float
    graph before quantization (``perf.system``, the lint CLI) — the same
    registered stage the full pipelines run, so instrumentation and
    fixed-point warnings behave identically.  Returns the optimized
    graph: the caller's object with ``in_place=True``, a copy otherwise.
    """
    from repro.compiler.stages import get_stage

    working = graph if in_place else graph.copy()
    ctx = CompilerContext(
        graph=working,
        config=NcoreConfig(),
        name=graph.name,
        pipeline_id="optimize-only",
        pass_manager=manager,
    )
    with get_tracer().span(
        "compiler.optimize", track="compiler", model=graph.name
    ) as span:
        changes = get_stage("optimize").run(ctx)
        span.set(**changes)
    ctx.stats.append(StageStats("optimize", 0.0, changes))
    return working


__all__ = [
    "CompileResult",
    "USE_DEFAULT_CACHE",
    "compile_graph",
    "optimize_graph",
]
