"""Content-addressed compile cache: in-memory LRU plus optional disk tier.

MLPerf, serving and multisocket runs instantiate the same zoo model over
and over; the paper's compile-once/run-many front end makes that cheap.
Keys come from :mod:`repro.compiler.fingerprint` — graph structure +
weights digest + ``NcoreConfig`` + pipeline id — so a hit is only ever
returned for a byte-identical compilation problem.

The memory tier returns the *same* :class:`CompiledModel` object to every
hit; compiled models are treated as immutable artifacts (nothing in the
runtime mutates one after compilation).  The disk tier pickles artifacts
under ``<directory>/<key>.pkl`` and re-populates the memory tier on load,
so a fresh process skips optimize/partition/lower entirely.

Beyond the model itself, a compilation can produce *sidecar artifacts*
keyed by the same content key — today the Tier-3 ``codegen`` macro-kernel
set (:mod:`repro.ncore.codegen`).  Sidecars live in their own LRU with
disk entries at ``<directory>/<key>.<kind>.pkl``; because the key already
digests graph + weights + ``NcoreConfig`` + pipeline, a sidecar hit is
exactly as safe as a model hit.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.graph.loadable import CompiledModel
from repro.obs.metrics import get_metrics


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`CompileCache`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    artifact_stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class CompileCache:
    """LRU map from compile keys to compiled models, with a disk tier.

    ``capacity`` bounds the memory tier (oldest-used entries evict
    first); ``directory`` enables the on-disk tier — evicted or
    cross-process entries are still served from disk at the cost of one
    unpickle.  Thread-safe: serving paths may compile concurrently.
    """

    def __init__(self, capacity: int = 32,
                 directory: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        self.stats = CacheStats()
        self._entries: OrderedDict[str, CompiledModel] = OrderedDict()
        self._artifacts: OrderedDict[tuple[str, str], object] = OrderedDict()
        self._lock = threading.Lock()
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def _disk_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.pkl"

    def lookup(self, key: str) -> CompiledModel | None:
        """The cached model for ``key``, or None (a recorded miss)."""
        with self._lock:
            model = self._entries.get(key)
            if model is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                self._count("compiler.cache.hits")
                return model
        path = self._disk_path(key)
        if path is not None and path.exists():
            try:
                with path.open("rb") as handle:
                    loaded = pickle.load(handle)
            except Exception:  # corrupt entry: drop it, treat as a miss
                path.unlink(missing_ok=True)
            else:
                if isinstance(loaded, CompiledModel):
                    with self._lock:
                        self._remember(key, loaded)
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                    self._count("compiler.cache.hits")
                    self._count("compiler.cache.disk_hits")
                    return loaded
                path.unlink(missing_ok=True)
        with self._lock:
            self.stats.misses += 1
        self._count("compiler.cache.misses")
        return None

    def store(self, key: str, model: CompiledModel) -> None:
        """Insert an artifact under its content key (memory + disk)."""
        with self._lock:
            self._remember(key, model)
            self.stats.stores += 1
        path = self._disk_path(key)
        if path is not None:
            tmp = path.with_suffix(".tmp")
            with tmp.open("wb") as handle:
                pickle.dump(model, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)

    # -- sidecar artifacts (same content key, second kind) --------------

    def _artifact_path(self, key: str, kind: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key}.{kind}.pkl"

    def lookup_artifact(self, key: str, kind: str) -> object | None:
        """The sidecar artifact of ``kind`` for ``key``, or None."""
        with self._lock:
            artifact = self._artifacts.get((key, kind))
            if artifact is not None:
                self._artifacts.move_to_end((key, kind))
                self.stats.artifact_hits += 1
                self._count("compiler.cache.artifact_hits")
                return artifact
        path = self._artifact_path(key, kind)
        if path is not None and path.exists():
            try:
                with path.open("rb") as handle:
                    loaded = pickle.load(handle)
            except Exception:  # corrupt entry: drop it, treat as a miss
                path.unlink(missing_ok=True)
            else:
                with self._lock:
                    self._remember_artifact(key, kind, loaded)
                    self.stats.artifact_hits += 1
                    self.stats.disk_hits += 1
                self._count("compiler.cache.artifact_hits")
                self._count("compiler.cache.disk_hits")
                return loaded
        with self._lock:
            self.stats.artifact_misses += 1
        self._count("compiler.cache.artifact_misses")
        return None

    def store_artifact(self, key: str, kind: str, artifact: object) -> None:
        """Insert a sidecar artifact under (content key, kind)."""
        with self._lock:
            self._remember_artifact(key, kind, artifact)
            self.stats.artifact_stores += 1
        self._count("compiler.cache.artifact_stores")
        path = self._artifact_path(key, kind)
        if path is not None:
            tmp = path.with_suffix(".tmp")
            with tmp.open("wb") as handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(path)

    def _remember_artifact(self, key: str, kind: str, artifact: object) -> None:
        # Caller holds the lock.
        self._artifacts[(key, kind)] = artifact
        self._artifacts.move_to_end((key, kind))
        while len(self._artifacts) > self.capacity:
            self._artifacts.popitem(last=False)
            self.stats.evictions += 1

    def _remember(self, key: str, model: CompiledModel) -> None:
        # Caller holds the lock.
        self._entries[key] = model
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _count(self, name: str) -> None:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(name).inc()

    # ------------------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and, with ``disk=True``, disk entries)."""
        with self._lock:
            self._entries.clear()
            self._artifacts.clear()
        if disk and self.directory is not None:
            for path in self.directory.glob("*.pkl"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries


# ----------------------------------------------------------------------
# The process-wide default cache (like the obs tracer/metrics defaults)
# ----------------------------------------------------------------------

_default_cache: CompileCache | None = CompileCache()


def get_compile_cache() -> CompileCache | None:
    """The process-wide cache used when callers pass none (None = off)."""
    return _default_cache


def set_compile_cache(cache: CompileCache | None) -> CompileCache | None:
    """Replace the process-wide cache; returns the previous one."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


@contextmanager
def install_cache(cache: CompileCache | None) -> Iterator[CompileCache | None]:
    """Swap the process-wide cache for a ``with`` block (tests, CLI)."""
    previous = set_compile_cache(cache)
    try:
        yield cache
    finally:
        set_compile_cache(previous)


__all__ = [
    "CacheStats",
    "CompileCache",
    "get_compile_cache",
    "install_cache",
    "set_compile_cache",
]
