"""``repro.compiler``: the unified staged compiler driver.

The paper's software stack (section V-B, Fig. 8) is one coherent
compiler: GCL graph optimization, delegate partitioning, NKL lowering
and scratchpad memory planning feed a single Ncore Loadable.  This
package is that compiler's driver:

- a registry of named :class:`Stage` objects and composable
  :class:`Pipeline` presets (``O0``/``O1``/``O2``);
- per-stage ``repro.obs`` spans and change-stats (nodes folded/fused,
  sweeps to fixed point, SRAM bytes planned) on the
  :class:`CompilerContext`;
- inter-stage verify gates reusing ``repro.analyze``, plus textual IR
  snapshots and diffs for ``repro compile --dump-ir``;
- a content-addressed compile cache (memory + disk) keyed by graph
  structure, weights digest, :class:`~repro.ncore.config.NcoreConfig`
  and pipeline id, so repeat compiles of a zoo model are near-free.

``repro.runtime.compile_model`` remains the thin facade over
:func:`compile_graph`.  See ``docs/compiler.md``.
"""

from repro.compiler.cache import (
    CacheStats,
    CompileCache,
    get_compile_cache,
    install_cache,
    set_compile_cache,
)
from repro.compiler.driver import (
    CompileResult,
    USE_DEFAULT_CACHE,
    compile_graph,
    optimize_graph,
)
from repro.compiler.fingerprint import (
    CACHE_FORMAT_VERSION,
    compile_key,
    fingerprint_config,
    fingerprint_graph,
)
from repro.compiler.irdump import dump_context, dump_graph, ir_diff
from repro.compiler.pipeline import (
    INPUT_SNAPSHOT,
    Pipeline,
    available_pipelines,
    get_pipeline,
    register_pipeline,
)
from repro.compiler.stages import (
    CompilerContext,
    CompilerError,
    Stage,
    StageStats,
    available_stages,
    get_stage,
    optimize_stage,
    register_stage,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "CompileCache",
    "CompileResult",
    "CompilerContext",
    "CompilerError",
    "INPUT_SNAPSHOT",
    "Pipeline",
    "Stage",
    "StageStats",
    "USE_DEFAULT_CACHE",
    "available_pipelines",
    "available_stages",
    "compile_graph",
    "compile_key",
    "dump_context",
    "dump_graph",
    "fingerprint_config",
    "fingerprint_graph",
    "get_compile_cache",
    "get_pipeline",
    "get_stage",
    "install_cache",
    "ir_diff",
    "optimize_graph",
    "optimize_stage",
    "register_pipeline",
    "register_stage",
    "set_compile_cache",
]
