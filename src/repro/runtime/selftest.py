"""Power-on self-test (POST): the ROM's "self-test routines".

Section IV-C.1: Ncore's instruction RAM "is also augmented with a 4KB
instruction ROM for storing commonly executed code and self-test
routines."  This module builds those routines, installs them in the ROM,
and runs the driver-side POST sequence:

1. *RAM march test* — bus-side pattern walk over sampled data/weight rows;
2. *MAC datapath test* — the ROM routine computes known dot products
   through the full NDU -> NPU -> OUT pipeline; the driver checks results;
3. *DMA loopback* — DRAM -> weight RAM -> compute -> data RAM -> DRAM;
4. *debug fabric* — event log ordering and perf-counter consistency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa import assemble
from repro.ncore import DmaDescriptor, Ncore

# Event tags emitted by the ROM routine.
_EVT_START = 14
_EVT_DONE = 15

# The ROM MAC routine: data rows 0..3 x weight row 0, requantized identity,
# stored to row 8.  The driver stages the vectors and checks the result.
ROM_MAC_TEST = """
event 14
setaddr a0, 0
setaddr a3, 0
setaddr a5, 0
loop 4 {
  bypass n0, dram[a0++]
  broadcast64 n1, wtram[a3], a5, inc
  mac.uint8 n0, n1
}
setaddr a6, 8
requant.uint8
store a6
event 15
halt
"""


@dataclass
class SelfTestReport:
    """Outcome of one POST run."""

    ram_march_ok: bool = False
    mac_datapath_ok: bool = False
    dma_loopback_ok: bool = False
    debug_fabric_ok: bool = False
    failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def fail(self, message: str) -> None:
        self.failures.append(message)


def install_rom(machine: Ncore) -> int:
    """Install the self-test routine into the ROM; returns its entry pc."""
    program = assemble(ROM_MAC_TEST)
    machine.iram.load_rom(program)
    return machine.iram.bank_instructions  # the ROM is mapped after the bank


def _march_test(machine: Ncore, report: SelfTestReport, sample_rows: int) -> None:
    row_bytes = machine.config.row_bytes
    patterns = [b"\x55" * row_bytes, b"\xaa" * row_bytes, bytes(range(256)) * (row_bytes // 256)]
    step = max(1, machine.config.sram_rows // sample_rows)
    ok = True
    for write, read in (
        (machine.write_data_ram, machine.read_data_ram),
        (machine.write_weight_ram, machine.read_weight_ram),
    ):
        for row in range(0, machine.config.sram_rows, step):
            for pattern in patterns:
                write(row * row_bytes, pattern)
                if read(row * row_bytes, row_bytes) != pattern:
                    report.fail(f"RAM march mismatch at row {row}")
                    ok = False
        # Leave the sampled rows zeroed.
        for row in range(0, machine.config.sram_rows, step):
            write(row * row_bytes, b"\x00" * row_bytes)
    report.ram_march_ok = ok


def _mac_test(machine: Ncore, report: SelfTestReport) -> None:
    rng = np.random.default_rng(0xC0DE)
    row_bytes = machine.config.row_bytes
    inputs = rng.integers(0, 8, size=(64, 4)).astype(np.uint8)   # (spatial, c)
    weights = rng.integers(0, 8, size=(64, 4)).astype(np.uint8)  # (k, c)
    for c in range(4):
        machine.write_data_ram(c * row_bytes, np.tile(inputs[:, c], 64).tobytes())
    wrow = np.zeros(row_bytes, dtype=np.uint8)
    for k in range(64):
        wrow[k * 64 : k * 64 + 4] = weights[k]
    machine.write_weight_ram(0, wrow.tobytes())
    from repro.dtypes import quantize_multiplier

    mult, shift = quantize_multiplier(1.0)
    machine.set_zero_offsets(0, 0)
    machine.set_requant(mult, shift, 0)
    entry = install_rom(machine)
    machine.pc = entry
    machine.halted = False
    result = machine.run()
    if not result.halted:
        report.fail("ROM MAC routine did not halt")
        return
    out = np.frombuffer(machine.read_data_ram(8 * row_bytes, row_bytes), np.uint8)
    expected = np.clip(inputs.astype(np.int32) @ weights.astype(np.int32).T, 0, 255)
    ok = True
    for k in range(64):
        if not np.array_equal(out[k * 64 : (k + 1) * 64], expected[:, k].astype(np.uint8)):
            report.fail(f"MAC datapath mismatch in channel {k}")
            ok = False
            break
    report.mac_datapath_ok = ok
    # Debug fabric: the routine's two events must bracket the run.
    events = machine.event_log.drain()
    tags = [e.tag for e in events if e.tag in (_EVT_START, _EVT_DONE)]
    counters_ok = machine.perf_counters["macs"].value >= 4 * machine.config.lanes
    if tags != [_EVT_START, _EVT_DONE]:
        report.fail(f"event log out of order: {tags}")
    elif not counters_ok:
        report.fail("perf counters did not observe the MAC work")
    else:
        report.debug_fabric_ok = True


def _dma_loopback(machine: Ncore, report: SelfTestReport) -> None:
    row_bytes = machine.config.row_bytes
    if machine.dma_read._window_base is None or machine.dma_write._window_base is None:
        report.fail("DMA windows not configured before POST")
        return
    payload = bytes(np.full(row_bytes, 3, np.uint8))
    machine.memory.write(machine.dma_read._window_base, payload)
    machine.set_dma_descriptor(
        0, DmaDescriptor(False, True, ram_row=1, rows=1, dram_addr=0)
    )
    machine.set_dma_descriptor(
        1, DmaDescriptor(True, False, ram_row=9, rows=1, dram_addr=row_bytes)
    )
    machine.write_data_ram(0, bytes(np.full(row_bytes, 2, np.uint8)))
    program = assemble(
        """
        dmastart 0
        dmawait 1
        setaddr a0, 0
        setaddr a1, 1
        mac dram[a0], wtram[a1]
        setaddr a6, 9
        requant.uint8
        store a6
        dmastart 1
        dmawait 2
        halt
        """
    )
    machine.execute_program(program)
    out = machine.memory.read(machine.dma_write._window_base + row_bytes, row_bytes)
    if out == bytes(np.full(row_bytes, 6, np.uint8)):
        report.dma_loopback_ok = True
    else:
        report.fail("DMA loopback produced wrong data")


def power_on_self_test(machine: Ncore, sample_rows: int = 16) -> SelfTestReport:
    """Run the full POST sequence on one Ncore instance."""
    report = SelfTestReport()
    machine.reset()
    _march_test(machine, report, sample_rows)
    _mac_test(machine, report)
    machine.reset()
    _dma_loopback(machine, report)
    machine.reset()
    return report
