"""The Ncore kernel-mode driver model (section V-D).

The driver is found through PCI enumeration (Ncore reports itself as a
coprocessor), then performs the tasks the paper lists:

- power up Ncore and clear state;
- reserve / allocate system DRAM for Ncore DMA;
- configure protected Ncore settings (through kernel-only config space);
- regulate memory-mapping of Ncore's address space;
- provide basic ioctl access to the user-mode runtime,

while preventing "more than one user from simultaneously gaining ownership
of Ncore's address space".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracer import get_tracer
from repro.soc.cha import ChaSoc


class DriverError(RuntimeError):
    """Driver-level failures (device missing, ownership conflicts, ...)."""


@dataclass
class MemoryMapping:
    """A user-mode mapping of Ncore's registers/strobes/SRAM, granted by
    the driver to exactly one owner at a time."""

    owner: str
    soc: ChaSoc

    # The mapping forwards to the machine's slave interface.
    def write_data_ram(self, offset: int, payload: bytes) -> None:
        self.soc.ncore.write_data_ram(offset, payload)

    def read_data_ram(self, offset: int, length: int) -> bytes:
        return self.soc.ncore.read_data_ram(offset, length)

    def write_weight_ram(self, offset: int, payload: bytes) -> None:
        self.soc.ncore.write_weight_ram(offset, payload)

    def machine(self):
        return self.soc.ncore


class NcoreKernelDriver:
    """The kernel-side gatekeeper for one CHA socket's Ncore."""

    DMA_WINDOW_BYTES = 4 << 30  # section IV-C: up to 4 GB without dynamic
    # base-register reconfiguration

    def __init__(self, soc: ChaSoc) -> None:
        self.soc = soc
        self._probed = False
        self._owner: str | None = None
        self.dma_window_base: int | None = None

    # -- probe / power ----------------------------------------------------

    def probe(self) -> None:
        """Standard PCI probe: find the coprocessor, power it up, reserve
        the DMA window, and configure the protected settings."""
        with get_tracer().span("driver.probe", track="driver") as span:
            self._probe(span)

    def _probe(self, span) -> None:
        functions = self.soc.enumerate_pci()
        ncore_fns = [f for f in functions if f.class_code >> 8 == 0x0B]
        if not ncore_fns:
            raise DriverError("no Ncore coprocessor found during PCI enumeration")
        # Power up through kernel-only config space.
        self.soc.ncore_pci.config_write(0x40, 1, kernel_mode=True)
        self.soc.ncore.reset()
        # Reserve system DRAM for DMA: a contiguous window at the top of
        # usable memory (a modelling choice; real drivers use CMA).
        window = min(self.DMA_WINDOW_BYTES, self.soc.dram.size // 2)
        base = self.soc.dram.size - window
        self.soc.ncore_pci.config_write(0x44, base & 0xFFFFFFFF, kernel_mode=True)
        self.soc.ncore_pci.config_write(0x48, base >> 32, kernel_mode=True)
        self.soc.ncore.dma_read.window_bytes = window
        self.soc.ncore.dma_write.window_bytes = window
        self.soc.ncore.dma_read.configure_window(base)
        self.soc.ncore.dma_write.configure_window(base)
        self.dma_window_base = base
        self._probed = True
        span.set(dma_window_base=base, dma_window_bytes=window)

    @property
    def powered_on(self) -> bool:
        return self.soc.ncore_pci.powered_on

    def power_down(self) -> None:
        if self._owner is not None:
            raise DriverError(f"cannot power down: owned by {self._owner!r}")
        self.soc.ncore_pci.config_write(0x40, 0, kernel_mode=True)

    def self_test(self):
        """Run the power-on self-test (the ROM's self-test routines plus
        the driver-side RAM march and DMA loopback checks)."""
        from repro.runtime.selftest import power_on_self_test

        if not self._probed:
            raise DriverError("probe the device before running POST")
        if self._owner is not None:
            raise DriverError("cannot run POST while the device is owned")
        return power_on_self_test(self.soc.ncore)

    # -- ownership / mmap ---------------------------------------------------

    def open(self, owner: str) -> MemoryMapping:
        """ioctl open: grant the single user-mode mapping."""
        with get_tracer().span("driver.open", track="driver", owner=owner):
            if not self._probed:
                raise DriverError("driver not probed; no device bound")
            if self._owner is not None:
                raise DriverError(
                    f"Ncore address space already owned by {self._owner!r}; "
                    "the driver prevents simultaneous ownership (section V-D)"
                )
            self._owner = owner
            return MemoryMapping(owner=owner, soc=self.soc)

    def close(self, mapping: MemoryMapping) -> None:
        with get_tracer().span("driver.close", track="driver", owner=mapping.owner):
            if mapping.owner != self._owner:
                raise DriverError("close from a non-owner mapping")
            self._owner = None

    # -- DMA address services ----------------------------------------------

    def dma_address_for(self, offset: int) -> int:
        """Translate a window offset to a physical DRAM address (kernel
        service used when the runtime stages weights)."""
        if self.dma_window_base is None:
            raise DriverError("DMA window not configured")
        return self.dma_window_base + offset
