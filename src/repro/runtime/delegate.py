"""Delegate integration: compile a graph and run it across Ncore and x86.

Mirrors the paper's execution model (Fig. 8 / Fig. 9): the framework splits
the graph into subgraphs; Ncore subgraphs are compiled through the GCL/NKL
into loadables, x86 subgraphs run on the cores, and the runtime handles the
callbacks between them.

Functional results come from the quantized fast-model kernels (validated
against the instruction-level simulator); timing comes from the NKL cycle
schedules for the Ncore portion and the core cost model for the x86
portion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler import USE_DEFAULT_CACHE, compile_graph
from repro.compiler.cache import CompileCache
from repro.compiler.driver import _UseDefaultCache
from repro.graph.gir import Graph
from repro.graph.loadable import CompiledModel
from repro.ncore.config import NcoreConfig
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.soc.cha import ChaSoc

# Fixed software cost of one delegate transition (framework callback,
# buffer handoff): tens of microseconds of interpreter work.
DELEGATE_TRANSITION_SECONDS = 10e-6


def compile_model(
    graph: Graph,
    config: NcoreConfig | None = None,
    optimize: bool = True,
    name: str | None = None,
    verify: bool = True,
    in_place: bool = False,
    cache: CompileCache | None | _UseDefaultCache = USE_DEFAULT_CACHE,
) -> CompiledModel:
    """Run the GCL pipeline, partition, and lower the Ncore segments.

    A thin backwards-compatible facade over
    :func:`repro.compiler.compile_graph`: ``optimize`` selects the ``O2``
    pipeline (``O0`` otherwise), repeat compiles of a byte-identical
    (graph, config, pipeline) are served from the process-wide compile
    cache (pass ``cache=None`` to force a fresh compile), and — unless
    ``in_place=True`` — optimization runs on a private copy so the
    caller's graph is never mutated.

    ``verify`` (the default) gates compilation on the ``repro.analyze``
    static verifiers: the GIR verifier runs over the partitioned graph and
    the Loadable verifier over every lowered segment, raising
    :class:`~repro.analyze.AnalysisError` on error-severity findings so a
    malformed graph or illegal DMA schedule never reaches the runtime.
    """
    with get_tracer().span(
        "delegate.compile", track="delegate", model=name or graph.name
    ) as span:
        result = compile_graph(
            graph,
            config=config,
            pipeline="O2" if optimize else "O0",
            name=name,
            verify=verify,
            in_place=in_place,
            cache=cache,
        )
        model = result.model
        span.set(
            segments=len(model.segments),
            ncore_segments=len(model.ncore_segments),
            x86_segments=len(model.x86_segments),
            cache_hit=result.cache_hit,
        )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("delegate.models_compiled").inc()
            metrics.counter("delegate.partitions.ncore").inc(len(model.ncore_segments))
            metrics.counter("delegate.partitions.x86").inc(len(model.x86_segments))
        return model


@dataclass
class RunTiming:
    """Latency breakdown of one inference (the Table IX decomposition)."""

    ncore_seconds: float
    x86_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.ncore_seconds + self.x86_seconds

    @property
    def ncore_fraction(self) -> float:
        total = self.total_seconds
        return self.ncore_seconds / total if total else 0.0


@dataclass
class RunResult:
    outputs: dict[str, np.ndarray]
    timing: RunTiming


class InferenceSession:
    """The synchronous single-query facade over an executor-owned device.

    Historically this class owned the device and ran exactly one query at
    a time; the device-owning half now lives in
    :class:`repro.runtime.executor.NcoreExecutor` (which the engine-based
    serving path shares), and the session keeps its public surface —
    ``run`` / ``close`` plus the driver/mapping attributes — as a thin
    wrapper for tools and tests that want one blocking inference.
    """

    def __init__(
        self,
        model: CompiledModel,
        soc: ChaSoc | None = None,
        owner: str = "inference-session",
        verify: bool = False,
        replay: bool | None = None,
        policy: "object | str | None" = None,
    ) -> None:
        from dataclasses import replace as dataclass_replace

        from repro.runtime.executor import (
            NcoreExecutor,
            TierPolicy,
            get_default_tier_policy,
        )

        # ``replay`` predates TierPolicy; it stays supported as a session
        # convenience and folds into the policy when explicitly passed.
        if isinstance(policy, str):
            resolved = TierPolicy.for_tier(policy)
        elif policy is None:
            resolved = get_default_tier_policy()
        else:
            assert isinstance(policy, TierPolicy)
            resolved = policy
        if replay is not None:
            resolved = dataclass_replace(resolved, replay=bool(replay))
        self.executor = NcoreExecutor(
            model, soc=soc, owner=owner, verify=verify, policy=resolved
        )

    @property
    def model(self) -> CompiledModel:
        return self.executor.model

    @property
    def soc(self) -> ChaSoc:
        return self.executor.soc

    @property
    def driver(self):
        return self.executor.driver

    @property
    def mapping(self):
        return self.executor.mapping

    @property
    def _clock(self) -> float:
        return self.executor._clock

    @property
    def _dma_bpc(self) -> float:
        return self.executor._dma_bpc

    def close(self) -> None:
        self.executor.close()

    # ------------------------------------------------------------------

    def ncore_seconds(self) -> float:
        """Ncore portion of one inference, from the NKL schedules."""
        return self.executor.ncore_seconds()

    def x86_graph_seconds(self) -> float:
        """x86 portion attributable to non-delegated graph segments."""
        return self.executor.x86_graph_seconds()

    def trace_schedule(self, tracer=None) -> None:
        """Emit the modelled execution timeline as simulated-time spans.

        One span per segment in execution order — the Fig. 8/9 view of the
        delegate's Ncore/x86 interleaving, with per-kernel child spans for
        the Ncore segments (the NKL cycle schedule).
        """
        tracer = tracer if tracer is not None else get_tracer()
        if not tracer.enabled:
            return
        clock = self._clock
        core = self.soc.cores[0]
        cursor = 0.0  # modelled seconds since inference start
        for index, segment in enumerate(self.model.segments):
            if segment.target == "ncore" and index in self.model.loadables:
                loadable = self.model.loadables[index]
                seconds = loadable.total_cycles(self._dma_bpc) / clock
                tracer.add_span(
                    f"ncore.segment[{index}]", "delegate.schedule",
                    start_us=cursor * 1e6, duration_us=seconds * 1e6,
                    args={"nodes": len(segment.nodes),
                          "cycles": loadable.total_cycles(self._dma_bpc),
                          "weights": "pinned" if loadable.memory_plan.weights_pinned
                          else "streamed"},
                )
                kernel_cursor = cursor
                for kernel in loadable.kernels:
                    kernel_seconds = kernel.cycles / clock
                    tracer.add_span(
                        kernel.kernel, "ncore.kernels",
                        start_us=kernel_cursor * 1e6,
                        duration_us=kernel_seconds * 1e6,
                        args={"node": kernel.node_name, "op": kernel.op,
                              "cycles": kernel.cycles, "macs": kernel.macs},
                    )
                    kernel_cursor += kernel_seconds
                cursor += seconds
            else:
                seconds = DELEGATE_TRANSITION_SECONDS
                for node in segment.nodes:
                    seconds += core.task_seconds(**_x86_node_cost(self.model.graph, node))
                tracer.add_span(
                    f"x86.segment[{index}]", "delegate.schedule",
                    start_us=cursor * 1e6, duration_us=seconds * 1e6,
                    args={"nodes": len(segment.nodes),
                          "ops": sorted({n.op for n in segment.nodes})},
                )
                cursor += seconds

    def run(self, feeds: dict[str, np.ndarray]) -> RunResult:
        """One inference: functional execution plus the timing model."""
        tracer = get_tracer()
        with tracer.span("delegate.run", track="delegate", model=self.model.name) as span:
            with tracer.span("delegate.execute_quantized", track="delegate"):
                # Routed through the executor's tier ladder: replay hits,
                # Tier-3 macro-kernels, or the interpreter walk.
                outputs, tier = self.executor._run_quantized(feeds)
                self.executor._attribute({tier: 1}, batch=1)
            timing = RunTiming(
                ncore_seconds=self.ncore_seconds(),
                x86_seconds=self.x86_graph_seconds(),
            )
            span.set(
                ncore_seconds=timing.ncore_seconds,
                x86_seconds=timing.x86_seconds,
                ncore_fraction=timing.ncore_fraction,
            )
        if tracer.enabled:
            self.trace_schedule(tracer)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("delegate.inferences").inc()
            metrics.histogram(
                "delegate.latency_seconds", unit="s"
            ).observe(timing.total_seconds)
        return RunResult(outputs=outputs, timing=timing)


def _x86_node_cost(graph: Graph, node) -> dict:
    """Roofline parameters for one x86-resident node."""
    out_bytes = sum(graph.tensor(n).type.num_bytes for n in node.outputs)
    in_bytes = sum(
        graph.tensor(n).type.num_bytes for n in node.inputs if not graph.tensor(n).is_constant
    )
    if node.op == "nms":
        anchors = graph.tensor(node.inputs[0]).shape[0]
        classes = graph.tensor(node.inputs[1]).shape[-1]
        # Sorting plus pairwise IoU work per class.
        return {"ops": 60.0 * anchors * classes, "bytes_moved": in_bytes + out_bytes}
    if node.op == "softmax":
        elements = graph.tensor(node.outputs[0]).type.num_elements
        return {"ops": 8.0 * elements, "bytes_moved": in_bytes + out_bytes}
    if node.op in ("reshape", "identity", "concat", "pad"):
        return {"bytes_moved": in_bytes + out_bytes}
    if node.op == "embedding":
        return {"bytes_moved": out_bytes}
    # Generic fallback: stream the data once.
    return {"ops": 2.0 * graph.tensor(node.outputs[0]).type.num_elements,
            "bytes_moved": in_bytes + out_bytes}
