"""Delegate integration: compile a graph and run it across Ncore and x86.

Mirrors the paper's execution model (Fig. 8 / Fig. 9): the framework splits
the graph into subgraphs; Ncore subgraphs are compiled through the GCL/NKL
into loadables, x86 subgraphs run on the cores, and the runtime handles the
callbacks between them.

Functional results come from the quantized fast-model kernels (validated
against the instruction-level simulator); timing comes from the NKL cycle
schedules for the Ncore portion and the core cost model for the x86
portion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.gir import Graph
from repro.graph.loadable import CompiledModel
from repro.graph.partitioner import partition
from repro.graph.passes import default_pipeline
from repro.ncore.config import NcoreConfig
from repro.nkl.lower import lower_segment
from repro.runtime.driver import NcoreKernelDriver
from repro.runtime.qkernels import execute_quantized
from repro.soc.cha import ChaSoc

# Fixed software cost of one delegate transition (framework callback,
# buffer handoff): tens of microseconds of interpreter work.
DELEGATE_TRANSITION_SECONDS = 10e-6


def compile_model(
    graph: Graph,
    config: NcoreConfig | None = None,
    optimize: bool = True,
    name: str | None = None,
) -> CompiledModel:
    """Run the GCL pipeline, partition, and lower the Ncore segments."""
    if optimize:
        default_pipeline().run(graph)
    segments = partition(graph)
    model = CompiledModel(
        name=name or graph.name, graph=graph, segments=segments
    )
    for index, segment in enumerate(segments):
        if segment.target == "ncore":
            model.loadables[index] = lower_segment(
                graph, segment, config, name=f"{model.name}_seg{index}"
            )
    return model


@dataclass
class RunTiming:
    """Latency breakdown of one inference (the Table IX decomposition)."""

    ncore_seconds: float
    x86_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.ncore_seconds + self.x86_seconds

    @property
    def ncore_fraction(self) -> float:
        total = self.total_seconds
        return self.ncore_seconds / total if total else 0.0


@dataclass
class RunResult:
    outputs: dict[str, np.ndarray]
    timing: RunTiming


class InferenceSession:
    """Owns the device (through the kernel driver) and runs inferences."""

    def __init__(
        self,
        model: CompiledModel,
        soc: ChaSoc | None = None,
        owner: str = "inference-session",
    ) -> None:
        self.model = model
        self.soc = soc or ChaSoc()
        self.driver = NcoreKernelDriver(self.soc)
        self.driver.probe()
        self.mapping = self.driver.open(owner)
        self._clock = self.soc.ncore.config.clock_hz
        self._dma_bpc = self.soc.ncore_to_dram_bandwidth() / self._clock

    def close(self) -> None:
        self.driver.close(self.mapping)

    # ------------------------------------------------------------------

    def ncore_seconds(self) -> float:
        """Ncore portion of one inference, from the NKL schedules."""
        return self.model.ncore_cycles(self._dma_bpc) / self._clock

    def x86_graph_seconds(self) -> float:
        """x86 portion attributable to non-delegated graph segments."""
        core = self.soc.cores[0]
        total = 0.0
        for index in self.model.x86_segments:
            segment = self.model.segments[index]
            total += DELEGATE_TRANSITION_SECONDS
            for node in segment.nodes:
                total += core.task_seconds(**_x86_node_cost(self.model.graph, node))
        return total

    def run(self, feeds: dict[str, np.ndarray]) -> RunResult:
        """One inference: functional execution plus the timing model."""
        outputs = execute_quantized(self.model.graph, feeds)
        timing = RunTiming(
            ncore_seconds=self.ncore_seconds(),
            x86_seconds=self.x86_graph_seconds(),
        )
        return RunResult(outputs=outputs, timing=timing)


def _x86_node_cost(graph: Graph, node) -> dict:
    """Roofline parameters for one x86-resident node."""
    out_bytes = sum(graph.tensor(n).type.num_bytes for n in node.outputs)
    in_bytes = sum(
        graph.tensor(n).type.num_bytes for n in node.inputs if not graph.tensor(n).is_constant
    )
    if node.op == "nms":
        anchors = graph.tensor(node.inputs[0]).shape[0]
        classes = graph.tensor(node.inputs[1]).shape[-1]
        # Sorting plus pairwise IoU work per class.
        return {"ops": 60.0 * anchors * classes, "bytes_moved": in_bytes + out_bytes}
    if node.op == "softmax":
        elements = graph.tensor(node.outputs[0]).type.num_elements
        return {"ops": 8.0 * elements, "bytes_moved": in_bytes + out_bytes}
    if node.op in ("reshape", "identity", "concat", "pad"):
        return {"bytes_moved": in_bytes + out_bytes}
    if node.op == "embedding":
        return {"bytes_moved": out_bytes}
    # Generic fallback: stream the data once.
    return {"ops": 2.0 * graph.tensor(node.outputs[0]).type.num_elements,
            "bytes_moved": in_bytes + out_bytes}
