"""Activation lookup tables for the OUT unit.

The OUT unit evaluates tanh and sigmoid through a 256-entry table indexed
by the requantized 8-bit code (section IV-D.5 lists both among its
activations).  The runtime builds the table from the input and output
quantization parameters and loads it through the slave interface.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.dtypes import QuantParams, dtype_info, quantize


def build_activation_lut(
    fn: Callable[[np.ndarray], np.ndarray],
    in_qp: QuantParams,
    out_qp: QuantParams,
) -> np.ndarray:
    """Tabulate ``out_code = Q_out(fn(DQ_in(in_code)))`` over all 256 codes.

    The table is indexed by ``code - dtype_min`` (0..255), matching the
    machine's :meth:`set_activation_lut` indexing.
    """
    info = dtype_info(in_qp.dtype)
    if info.bytes_per_element != 1:
        raise ValueError("activation LUTs cover 8-bit input codes")
    codes = np.arange(int(info.min_value), int(info.max_value) + 1, dtype=np.int64)
    real = in_qp.scale * (codes - in_qp.zero_point)
    activated = fn(real.astype(np.float32))
    return quantize(activated, out_qp).astype(np.int32)


def sigmoid_lut(in_qp: QuantParams, out_qp: QuantParams) -> np.ndarray:
    return build_activation_lut(
        lambda x: 1.0 / (1.0 + np.exp(-x.astype(np.float64))), in_qp, out_qp
    )


def tanh_lut(in_qp: QuantParams, out_qp: QuantParams) -> np.ndarray:
    return build_activation_lut(np.tanh, in_qp, out_qp)
