"""x86-side image preprocessing: the MLPerf input pipeline.

"The x86 portion consists of preprocessing, postprocessing, framework
overhead, and benchmark overhead" (section VI-C).  These are the actual
preprocessing kernels the cost model prices: the MLPerf classification
pipeline resizes the short side, center-crops, and normalizes; SSD resizes
directly to 300x300.
"""

from __future__ import annotations

import numpy as np


def resize_bilinear(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resize of an (H, W, C) image (align_corners=False)."""
    h, w, c = image.shape
    if (h, w) == (out_h, out_w):
        return image.astype(np.float32)
    # Half-pixel-centre sampling, the TF/PIL convention.
    ys = (np.arange(out_h) + 0.5) * h / out_h - 0.5
    xs = (np.arange(out_w) + 0.5) * w / out_w - 0.5
    y0 = np.clip(np.floor(ys).astype(np.int64), 0, h - 1)
    x0 = np.clip(np.floor(xs).astype(np.int64), 0, w - 1)
    y1 = np.clip(y0 + 1, 0, h - 1)
    x1 = np.clip(x0 + 1, 0, w - 1)
    wy = np.clip(ys - y0, 0.0, 1.0)[:, None, None]
    wx = np.clip(xs - x0, 0.0, 1.0)[None, :, None]
    img = image.astype(np.float32)
    top = img[y0][:, x0] * (1 - wx) + img[y0][:, x1] * wx
    bottom = img[y1][:, x0] * (1 - wx) + img[y1][:, x1] * wx
    return (top * (1 - wy) + bottom * wy).astype(np.float32)


def center_crop(image: np.ndarray, size: int) -> np.ndarray:
    """Central (size, size) crop of an (H, W, C) image."""
    h, w, _ = image.shape
    if h < size or w < size:
        raise ValueError(f"image {h}x{w} smaller than crop {size}")
    top = (h - size) // 2
    left = (w - size) // 2
    return image[top : top + size, left : left + size, :]


def normalize(image: np.ndarray, mean: float = 127.5, scale: float = 1 / 127.5) -> np.ndarray:
    """Map uint8 pixel values into the model's input range."""
    return ((image.astype(np.float32) - mean) * scale).astype(np.float32)


def classification_pipeline(image: np.ndarray, resolution: int = 224) -> np.ndarray:
    """The MLPerf classification preprocess: short-side resize to
    resolution*256/224, center crop, normalize; returns (1, R, R, 3)."""
    h, w, _ = image.shape
    short_side = int(round(resolution * 256 / 224))
    resized = (
        resize_bilinear(image, short_side, int(round(w * short_side / h)))
        if h < w
        else resize_bilinear(image, int(round(h * short_side / w)), short_side)
    )
    cropped = center_crop(resized, resolution)
    return normalize(cropped)[None, ...]


def detection_pipeline(image: np.ndarray, resolution: int = 300) -> np.ndarray:
    """The SSD preprocess: direct resize to (resolution, resolution)."""
    resized = resize_bilinear(image, resolution, resolution)
    return normalize(resized)[None, ...]
