"""The Ncore runtime: kernel driver model, delegate integration, execution.

Section V-C/D: the runtime provides a high-level abstraction of the
memory-mapped Ncore interface, integrates with the framework's Delegate
interface to run mixed Ncore/x86 graphs, and talks to a kernel-mode driver
that owns the protected settings (DMA windows, power).
"""

from repro.runtime.delegate import InferenceSession, compile_model
from repro.runtime.driver import DriverError, NcoreKernelDriver
from repro.runtime.executor import (
    TIER_CHOICES,
    EngineExecutor,
    NcoreExecutor,
    QueryTicket,
    SessionHandle,
    TierPolicy,
    get_default_tier_policy,
    set_default_tier_policy,
)
from repro.runtime.luts import build_activation_lut, sigmoid_lut, tanh_lut
from repro.runtime.profiler import EventLogOverflowError, Profiler, Trace
from repro.runtime.qkernels import execute_quantized
from repro.runtime.selftest import SelfTestReport, power_on_self_test

__all__ = [
    "DriverError",
    "EngineExecutor",
    "EventLogOverflowError",
    "InferenceSession",
    "NcoreExecutor",
    "NcoreKernelDriver",
    "Profiler",
    "QueryTicket",
    "SessionHandle",
    "SelfTestReport",
    "TIER_CHOICES",
    "TierPolicy",
    "Trace",
    "get_default_tier_policy",
    "set_default_tier_policy",
    "build_activation_lut",
    "compile_model",
    "execute_quantized",
    "power_on_self_test",
    "sigmoid_lut",
    "tanh_lut",
]
