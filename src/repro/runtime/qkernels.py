"""Quantized operator kernels: the Ncore-equivalent integer semantics.

These kernels compute exactly what Ncore's pipeline computes — int32
accumulation of zero-offset uint8 operands, gemmlowp-style requantization,
activation clamps in the quantized domain — vectorised with numpy.  They
serve as (a) the fast-model execution path for full networks and (b) the
x86 reference kernels the instruction-level simulator is validated against
(tests cross-check the two on small shapes).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import (
    ChannelQuantParams,
    QuantParams,
    quantize,
    quantize_multiplier,
    requantize,
    rounding_right_shift,
    saturate,
)
from repro.graph.gir import Graph, GraphError, Node
from repro.graph.reference import execute_node as execute_float_node

_ADD_SHIFT = 20  # fixed-point headroom for elementwise rescaling


def _requant_acc(acc: np.ndarray, real_multiplier: float, out_qp: QuantParams) -> np.ndarray:
    mult, shift = quantize_multiplier(real_multiplier)
    return requantize(acc.astype(np.int32), mult, shift, out_qp.zero_point, out_qp.dtype)


def _weight_offsets(weights: np.ndarray, w_qp) -> np.ndarray:
    """Weights with their zero point(s) removed, as int64."""
    w = weights.astype(np.int64)
    if isinstance(w_qp, ChannelQuantParams):
        shape = [1] * w.ndim
        shape[w_qp.axis] = w_qp.num_channels
        return w - np.asarray(w_qp.zero_points, dtype=np.int64).reshape(shape)
    return w - w_qp.zero_point


def _requant_output(acc: np.ndarray, x_scale: float, w_qp, out_qp: QuantParams) -> np.ndarray:
    """Requantize an accumulator whose last axis is the output channel.

    Per-tensor weights use one multiplier; per-channel weights use one per
    output channel — exactly what the OUT unit's per-lane range/scale
    registers implement (repro.ncore.out.requantize_lanes).
    """
    if not isinstance(w_qp, ChannelQuantParams):
        return _requant_acc(acc, x_scale * w_qp.scale / out_qp.scale, out_qp)
    from repro.ncore.out import requantize_lanes

    channels = acc.shape[-1]
    pairs = [
        quantize_multiplier(x_scale * scale / out_qp.scale) for scale in w_qp.scales
    ]
    mults = np.array([p[0] for p in pairs], dtype=np.int64)
    shifts = np.array([p[1] for p in pairs], dtype=np.int64)
    flat = np.clip(acc, -(2**31), 2**31 - 1).astype(np.int32).reshape(-1, channels)
    values = requantize_lanes(
        flat,
        np.broadcast_to(mults, flat.shape),
        np.broadcast_to(shifts, flat.shape),
        np.full(flat.shape, out_qp.zero_point, dtype=np.int64),
        out_qp.dtype,
    )
    return saturate(values.reshape(acc.shape), out_qp.dtype)


def _activation_clamp(values: np.ndarray, activation: str, out_qp: QuantParams) -> np.ndarray:
    if activation in ("none", None):
        return values
    if activation == "relu":
        return np.maximum(values, out_qp.zero_point)
    if activation == "relu6":
        six = int(quantize(np.array(6.0), out_qp))
        return np.clip(values, out_qp.zero_point, six)
    raise GraphError(f"activation {activation!r} has no quantized form")


def qconv2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
    out_qp: QuantParams,
    stride=(1, 1),
    padding=((0, 0), (0, 0)),
    activation: str = "none",
) -> np.ndarray:
    """Quantized conv2d: NHWC uint8 x HWIO uint8 -> uint8."""
    kh, kw, cin, cout = weights.shape
    # Padding inserts the input zero point (real value 0.0).
    (pt, pb), (pl, pr) = padding
    xq = np.pad(
        x.astype(np.int64) - x_qp.zero_point,
        ((0, 0), (pt, pb), (pl, pr), (0, 0)),
    )
    wq = _weight_offsets(weights, w_qp)
    n, h, w, _ = xq.shape
    sh, sw = stride
    oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
    cols = np.empty((n, oh, ow, kh * kw * cin), dtype=np.int64)
    for i in range(kh):
        for j in range(kw):
            patch = xq[:, i : i + oh * sh : sh, j : j + ow * sw : sw, :]
            cols[..., (i * kw + j) * cin : (i * kw + j + 1) * cin] = patch
    acc = cols.reshape(-1, kh * kw * cin) @ wq.reshape(kh * kw * cin, cout)
    acc = acc.reshape(n, oh, ow, cout)
    if bias is not None:
        acc = acc + bias.astype(np.int64)
    acc = np.clip(acc, -(2**31), 2**31 - 1)
    out = _requant_output(acc, x_qp.scale, w_qp, out_qp)
    return _activation_clamp(out, activation, out_qp).astype(out.dtype)


def qdepthwise(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
    out_qp: QuantParams,
    stride=(1, 1),
    padding=((0, 0), (0, 0)),
    activation: str = "none",
) -> np.ndarray:
    kh, kw, c = weights.shape
    (pt, pb), (pl, pr) = padding
    xq = np.pad(
        x.astype(np.int64) - x_qp.zero_point,
        ((0, 0), (pt, pb), (pl, pr), (0, 0)),
    )
    wq = _weight_offsets(weights, w_qp)
    n, h, w, _ = xq.shape
    sh, sw = stride
    oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
    acc = np.zeros((n, oh, ow, c), dtype=np.int64)
    for i in range(kh):
        for j in range(kw):
            acc += xq[:, i : i + oh * sh : sh, j : j + ow * sw : sw, :] * wq[i, j]
    if bias is not None:
        acc = acc + bias.astype(np.int64)
    acc = np.clip(acc, -(2**31), 2**31 - 1)
    out = _requant_output(acc, x_qp.scale, w_qp, out_qp)
    return _activation_clamp(out, activation, out_qp).astype(out.dtype)


def qfully_connected(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
    out_qp: QuantParams,
    activation: str = "none",
) -> np.ndarray:
    acc = (x.astype(np.int64) - x_qp.zero_point) @ _weight_offsets(weights, w_qp)
    if bias is not None:
        acc = acc + bias.astype(np.int64)
    acc = np.clip(acc, -(2**31), 2**31 - 1)
    out = _requant_output(acc, x_qp.scale, w_qp, out_qp)
    return _activation_clamp(out, activation, out_qp).astype(out.dtype)


def _rescale_to(values: np.ndarray, qp: QuantParams, out_qp: QuantParams) -> np.ndarray:
    """Fixed-point rescale of a quantized tensor into another scale,
    without the output zero point (int64 result, 2**-_ADD_SHIFT units)."""
    factor = int(round(qp.scale / out_qp.scale * (1 << _ADD_SHIFT)))
    return (values.astype(np.int64) - qp.zero_point) * factor


def qadd(
    a: np.ndarray,
    a_qp: QuantParams,
    b: np.ndarray,
    b_qp: QuantParams,
    out_qp: QuantParams,
    activation: str = "none",
) -> np.ndarray:
    """Quantized residual add with fixed-point input rescaling."""
    total = _rescale_to(a, a_qp, out_qp) + _rescale_to(b, b_qp, out_qp)
    out = rounding_right_shift(total, _ADD_SHIFT) + out_qp.zero_point
    out = saturate(out, out_qp.dtype)
    return _activation_clamp(out, activation, out_qp).astype(out.dtype)


def qrequant(values: np.ndarray, qp: QuantParams, out_qp: QuantParams) -> np.ndarray:
    """Requantize a tensor to different affine parameters (concat inputs)."""
    total = _rescale_to(values, qp, out_qp)
    out = rounding_right_shift(total, _ADD_SHIFT) + out_qp.zero_point
    return saturate(out, out_qp.dtype)


def qavg_pool(
    x: np.ndarray, ksize, stride, padding=((0, 0), (0, 0))
) -> np.ndarray:
    """Average pool on quantized values (input and output share params)."""
    kh, kw = ksize
    (pt, pb), (pl, pr) = padding
    # Average in the quantized domain with round-half-up.
    xq = np.pad(x.astype(np.int64), ((0, 0), (pt, pb), (pl, pr), (0, 0)))
    n, h, w, c = xq.shape
    sh, sw = stride
    oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
    acc = np.zeros((n, oh, ow, c), dtype=np.int64)
    for i in range(kh):
        for j in range(kw):
            acc += xq[:, i : i + oh * sh : sh, j : j + ow * sw : sw, :]
    count = kh * kw
    out = (acc + count // 2) // count
    return out.astype(x.dtype)


def qmax_pool(x: np.ndarray, ksize, stride, padding=((0, 0), (0, 0))) -> np.ndarray:
    kh, kw = ksize
    (pt, pb), (pl, pr) = padding
    # Max pooling must not let padding or the fold's initial value clamp
    # real codes: both start at the type's minimum (matters for int16,
    # whose quantized codes go negative).
    floor = np.iinfo(x.dtype).min
    xq = np.pad(x, ((0, 0), (pt, pb), (pl, pr), (0, 0)), constant_values=floor)
    n, h, w, c = xq.shape
    sh, sw = stride
    oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
    out = np.full((n, oh, ow, c), floor, dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            out = np.maximum(out, xq[:, i : i + oh * sh : sh, j : j + ow * sw : sw, :])
    return out


def execute_quantized(graph: Graph, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Execute a (possibly mixed) quantized graph.

    Quantized ops run through the integer kernels above; float ops fall
    back to the reference float semantics.  This is the functional model
    of what the CompiledModel computes across Ncore and x86 segments.
    """
    values: dict[str, np.ndarray] = {}
    for name, tensor in graph.tensors.items():
        if tensor.is_constant:
            values[name] = tensor.data
    for name in graph.inputs:
        if name not in feeds:
            raise GraphError(f"missing feed for graph input {name!r}")
        values[name] = np.asarray(feeds[name])
    for node in graph.nodes:
        ins = [values[name] for name in node.inputs]
        outs = _execute_quantized_node(graph, node, ins)
        for name, value in zip(node.outputs, outs, strict=False):
            values[name] = value
    return {name: values[name] for name in graph.outputs}


def _qp(graph: Graph, name: str) -> QuantParams:
    qp = graph.tensor(name).quant
    if qp is None:
        raise GraphError(f"tensor {name!r} lacks quantization parameters")
    return qp


def round_float_outputs(
    graph: Graph, node: Node, outs: list[np.ndarray]
) -> list[np.ndarray]:
    """Apply the float-region write-back rounding to a node's outputs.

    bf16 graphs round every intermediate to bfloat16 precision, as the OUT
    unit does when writing results back to the RAMs; float32 tensors pass
    through untouched.  This is the bit-exactness contract for the float
    region — the Tier-3 float macro-kernels (:mod:`repro.ncore.codegen`)
    replicate exactly this rounding per node output.
    """
    from repro.dtypes import NcoreDType, to_bfloat16

    rounded = []
    for name, value in zip(node.outputs, outs, strict=False):
        if graph.tensor(name).type.dtype is NcoreDType.BF16:
            rounded.append(to_bfloat16(np.asarray(value, dtype=np.float32)))
        else:
            rounded.append(value)
    return rounded


def _execute_quantized_node(graph: Graph, node: Node, ins: list[np.ndarray]):
    out_name = node.outputs[0]
    out_tensor = graph.tensor(out_name)
    if out_tensor.quant is None and node.op not in ("quantize",):
        # Float region: use the reference semantics (incl. dequantize).
        outs = execute_float_node(graph, node, ins)
        return round_float_outputs(graph, node, outs)
    attrs = node.attrs
    act = attrs.get("activation", "none")
    if node.op == "quantize":
        return execute_float_node(graph, node, ins)
    if node.op == "conv2d":
        bias = ins[2] if len(ins) > 2 else None
        return [
            qconv2d(
                ins[0], ins[1], bias,
                _qp(graph, node.inputs[0]), _qp(graph, node.inputs[1]), _qp(graph, out_name),
                attrs.get("stride", (1, 1)), attrs.get("padding", ((0, 0), (0, 0))), act,
            )
        ]
    if node.op == "depthwise_conv2d":
        bias = ins[2] if len(ins) > 2 else None
        return [
            qdepthwise(
                ins[0], ins[1], bias,
                _qp(graph, node.inputs[0]), _qp(graph, node.inputs[1]), _qp(graph, out_name),
                attrs.get("stride", (1, 1)), attrs.get("padding", ((0, 0), (0, 0))), act,
            )
        ]
    if node.op == "fully_connected":
        bias = ins[2] if len(ins) > 2 else None
        return [
            qfully_connected(
                ins[0], ins[1], bias,
                _qp(graph, node.inputs[0]), _qp(graph, node.inputs[1]), _qp(graph, out_name),
                act,
            )
        ]
    if node.op == "add":
        return [
            qadd(
                ins[0], _qp(graph, node.inputs[0]),
                ins[1], _qp(graph, node.inputs[1]),
                _qp(graph, out_name), act,
            )
        ]
    if node.op == "max_pool":
        return [
            qmax_pool(ins[0], attrs["ksize"], attrs["stride"], attrs.get("padding", ((0, 0), (0, 0))))
        ]
    if node.op == "avg_pool":
        return [
            qavg_pool(ins[0], attrs["ksize"], attrs["stride"], attrs.get("padding", ((0, 0), (0, 0))))
        ]
    if node.op == "mean":
        axis = attrs.get("axis", (1, 2))
        acc = np.sum(ins[0].astype(np.int64), axis=axis)
        count = int(np.prod([ins[0].shape[a] for a in axis]))
        in_qp, out_qp = _qp(graph, node.inputs[0]), _qp(graph, out_name)
        mean_q = (acc + count // 2) // count
        if in_qp == out_qp:
            return [saturate(mean_q, out_qp.dtype)]
        return [qrequant(saturate(mean_q, in_qp.dtype), in_qp, out_qp)]
    if node.op == "concat":
        out_qp = _qp(graph, out_name)
        parts = [
            qrequant(value, _qp(graph, name), out_qp)
            for value, name in zip(ins, node.inputs, strict=True)
        ]
        return [np.concatenate(parts, axis=attrs.get("axis", -1))]
    if node.op in ("relu", "relu6"):
        return [_activation_clamp(ins[0], node.op, _qp(graph, out_name)).astype(ins[0].dtype)]
    if node.op == "reshape":
        return [ins[0].reshape(node.attrs["shape"])]
    if node.op == "identity":
        return [ins[0]]
    raise GraphError(f"op {node.op!r} has no quantized kernel")
