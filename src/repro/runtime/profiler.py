"""Runtime profiling via the event log: Fig. 10-style traces.

Section V-C shows "an example runtime trace generated during an Ncore run
using Ncore's debugging features".  The profiler brackets program regions
with event markers, runs the program, and folds the drained event log into
named spans with cycle and wall-time attribution — logging "poses no
performance penalty on Ncore" (section IV-F), so the trace is free.

When a :mod:`repro.obs` tracer is installed, the folded spans are also
forwarded to it (track ``ncore``), so Profiler traces land in the same
Perfetto export as the rest of the system.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.isa import Instruction, SeqOp, SeqOpcode
from repro.ncore import Ncore
from repro.obs.render import render_bars
from repro.obs.tracer import get_tracer

MAX_TAG = 15  # the EVENT seq-op arg is a 4-bit field

DEFAULT_CLOCK_HZ = 2.5e9


class EventLogOverflowError(RuntimeError):
    """The 1,024-entry event log wrapped mid-program: spans were lost.

    The hardware buffer silently overwrites its oldest entries (section
    IV-F); a trace folded from a wrapped log would be truncated, so the
    profiler refuses to return one unless configured to only warn.
    """


@dataclass(frozen=True)
class Span:
    """One named region of the trace."""

    name: str
    start_cycle: int
    end_cycle: int
    clock_hz: float = DEFAULT_CLOCK_HZ

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def seconds(self, clock_hz: float | None = None) -> float:
        """Span duration; the clock defaults to the machine's configured
        ``config.clock_hz``, threaded in by the profiler."""
        return self.cycles / (clock_hz if clock_hz is not None else self.clock_hz)


@dataclass
class Trace:
    """A completed profiling run."""

    spans: list[Span]
    total_cycles: int
    clock_hz: float

    def render(self, width: int = 48) -> str:
        """A Fig. 10-style text trace (one bar per span)."""
        title = (f"Ncore trace: {self.total_cycles} cycles "
                 f"({self.total_cycles / self.clock_hz * 1e6:.2f} us)")
        rows = [(span.name, span.start_cycle, span.cycles) for span in self.spans]
        return render_bars(title, rows, max(1, self.total_cycles), width=width)

    def span(self, name: str) -> Span:
        for candidate in self.spans:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no span named {name!r}")


class Profiler:
    """Instrument and run a program on one machine.

    ``on_overflow`` selects what happens when the event log wrapped during
    the run (spans irrecoverably lost): ``"raise"`` (default) raises
    :class:`EventLogOverflowError`, ``"warn"`` emits a warning and returns
    the truncated trace.
    """

    def __init__(self, machine: Ncore, on_overflow: str = "raise") -> None:
        if on_overflow not in ("raise", "warn"):
            raise ValueError("on_overflow must be 'raise' or 'warn'")
        self.machine = machine
        self.on_overflow = on_overflow
        self._names: dict[int, str] = {}
        self._next_tag = 0

    def marker(self, name: str) -> Instruction:
        """Allocate an event marker instruction for a named region edge."""
        if self._next_tag > MAX_TAG:
            raise ValueError(f"at most {MAX_TAG + 1} markers per trace")
        tag = self._next_tag
        self._next_tag += 1
        self._names[tag] = name
        return Instruction(seq=SeqOp(SeqOpcode.EVENT, tag))

    def instrument(self, regions: list[tuple[str, list[Instruction]]]) -> list[Instruction]:
        """Build a program of named regions, each bracketed by markers."""
        program: list[Instruction] = []
        for name, body in regions:
            program.append(self.marker(f"{name}"))
            program.extend(body)
        program.append(self.marker("__end__"))
        program.append(Instruction(seq=SeqOp(SeqOpcode.HALT)))
        return program

    def run(self, program: list[Instruction], max_cycles: int = 100_000_000) -> Trace:
        """Execute and fold the event log into spans."""
        self.machine.event_log.drain()  # start clean
        result = self.machine.execute_program(program, max_cycles=max_cycles)
        dropped = self.machine.event_log.dropped
        if dropped:
            message = (
                f"event log wrapped during the run: {dropped} events were "
                f"overwritten before draining, the trace is truncated "
                f"(capacity {self.machine.event_log.capacity})"
            )
            if self.on_overflow == "raise":
                raise EventLogOverflowError(message)
            warnings.warn(message, RuntimeWarning, stacklevel=2)
        clock_hz = self.machine.config.clock_hz
        events = [
            e for e in self.machine.event_log.drain() if e.tag in self._names
        ]
        spans: list[Span] = []
        for current, following in zip(events, events[1:], strict=False):
            name = self._names[current.tag]
            if name == "__end__":
                continue
            spans.append(Span(name, current.cycle, following.cycle, clock_hz=clock_hz))
        tracer = get_tracer()
        if tracer.enabled:
            for span in spans:
                tracer.add_cycle_span(
                    span.name, "ncore", span.start_cycle, span.end_cycle,
                    category="profiler",
                )
        return Trace(
            spans=spans,
            total_cycles=result.cycles,
            clock_hz=clock_hz,
        )
