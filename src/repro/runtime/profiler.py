"""Runtime profiling via the event log: Fig. 10-style traces.

Section V-C shows "an example runtime trace generated during an Ncore run
using Ncore's debugging features".  The profiler brackets program regions
with event markers, runs the program, and folds the drained event log into
named spans with cycle and wall-time attribution — logging "poses no
performance penalty on Ncore" (section IV-F), so the trace is free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa import Instruction, SeqOp, SeqOpcode
from repro.ncore import Ncore

MAX_TAG = 15  # the EVENT seq-op arg is a 4-bit field


@dataclass(frozen=True)
class Span:
    """One named region of the trace."""

    name: str
    start_cycle: int
    end_cycle: int

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    def seconds(self, clock_hz: float = 2.5e9) -> float:
        return self.cycles / clock_hz


@dataclass
class Trace:
    """A completed profiling run."""

    spans: list[Span]
    total_cycles: int
    clock_hz: float

    def render(self, width: int = 48) -> str:
        """A Fig. 10-style text trace (one bar per span)."""
        lines = [f"Ncore trace: {self.total_cycles} cycles "
                 f"({self.total_cycles / self.clock_hz * 1e6:.2f} us)"]
        span_total = max(1, self.total_cycles)
        for span in self.spans:
            offset = int(span.start_cycle / span_total * width)
            length = max(1, int(span.cycles / span_total * width))
            bar = " " * offset + "#" * length
            lines.append(
                f"  {span.name:<20} {span.start_cycle:>7} +{span.cycles:<7} |{bar}"
            )
        return "\n".join(lines)

    def span(self, name: str) -> Span:
        for candidate in self.spans:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no span named {name!r}")


class Profiler:
    """Instrument and run a program on one machine."""

    def __init__(self, machine: Ncore) -> None:
        self.machine = machine
        self._names: dict[int, str] = {}
        self._next_tag = 0

    def marker(self, name: str) -> Instruction:
        """Allocate an event marker instruction for a named region edge."""
        if self._next_tag > MAX_TAG:
            raise ValueError(f"at most {MAX_TAG + 1} markers per trace")
        tag = self._next_tag
        self._next_tag += 1
        self._names[tag] = name
        return Instruction(seq=SeqOp(SeqOpcode.EVENT, tag))

    def instrument(self, regions: list[tuple[str, list[Instruction]]]) -> list[Instruction]:
        """Build a program of named regions, each bracketed by markers."""
        program: list[Instruction] = []
        for name, body in regions:
            program.append(self.marker(f"{name}"))
            program.extend(body)
        program.append(self.marker("__end__"))
        program.append(Instruction(seq=SeqOp(SeqOpcode.HALT)))
        return program

    def run(self, program: list[Instruction], max_cycles: int = 100_000_000) -> Trace:
        """Execute and fold the event log into spans."""
        self.machine.event_log.drain()  # start clean
        result = self.machine.execute_program(program, max_cycles=max_cycles)
        events = [
            e for e in self.machine.event_log.drain() if e.tag in self._names
        ]
        spans: list[Span] = []
        for current, following in zip(events, events[1:]):
            name = self._names[current.tag]
            if name == "__end__":
                continue
            spans.append(Span(name, current.cycle, following.cycle))
        return Trace(
            spans=spans,
            total_cycles=result.cycles,
            clock_hz=self.machine.config.clock_hz,
        )
