"""Engine-owned execution: device executor, async sessions, batching.

The original runtime bound everything to one synchronous object — an
``InferenceSession`` owned the device *and* ran exactly one query at a
time.  This module splits that into the pieces a serving system needs:

- :class:`NcoreExecutor` owns the device (driver probe/open, the memory
  mapping, the timing model) and executes one batch at a time.  It
  refuses to load a model whose Loadables fail the ``repro.analyze``
  static verifiers unless constructed with ``verify=False`` — the same
  gate the compiler applies, re-checked at load time because a Loadable
  can reach the runtime without passing through ``compile_model``.
- :class:`EngineExecutor` mounts an executor on a discrete-event engine:
  a dynamic-batching queue (max batch / max wait) feeds the Ncore
  executor while modelled x86 workers handle per-query pre/post work.
- :class:`SessionHandle` is the lightweight client object: ``submit()``
  enqueues a query and returns a ticket, ``poll()`` reports completion.
  Many handles can share one executor — the multi-query serving shape
  the blocking session could not express.

Simulated time throughout: latencies come from the engine clock, never
the wall clock, so every schedule is deterministic.
"""

from __future__ import annotations

import hashlib
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace
from typing import Any

import numpy as np

from repro.engine import BatchQueue, Engine, WorkerPool
from repro.engine.core import Event
from repro.engine.resources import Resource
from repro.graph.loadable import CompiledModel
from repro.graph.partitioner import Segment
from repro.ncore.codegen import (
    CODEGEN_ARTIFACT_KIND,
    MacroKernel,
    MacroKernelSet,
    MultiKernelDispatcher,
)
from repro.obs.attrib import (
    TIER_CODEGEN,
    TIER_FASTPATH,
    TIER_INTERPRETER,
    TIER_REPLAY,
    get_attrib,
)
from repro.obs.context import TraceContext, mint_trace
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.runtime.driver import NcoreKernelDriver
from repro.runtime.qkernels import _execute_quantized_node, execute_quantized
from repro.soc.cha import ChaSoc

#: ``--tier`` spellings accepted by :meth:`TierPolicy.for_tier` and the CLI.
TIER_CHOICES = ("auto", "interpreter", "fastpath", "replay", "codegen")

_ORACLE_MODES = ("off", "first", "always")


@dataclass(frozen=True)
class TierPolicy:
    """Which execution tiers one executor may use.

    Replaces the old ad-hoc ``replay``/``replay_capacity`` (and machine
    ``fastpath``/``sanitize``) flag sprawl with one value describing the
    tier ladder in precedence order::

        predict -> replay -> codegen -> fastpath -> interpreter

    - ``predict``: the learned cycle-prediction tier (ROADMAP item 3).
      Reserved; constructing a policy with it raises until it lands.
    - ``replay``: Tier 2 — byte-identical feeds replay cached outputs.
    - ``codegen``: Tier 3 — AOT macro-kernels from the compile cache
      (:mod:`repro.ncore.codegen`); falls back per segment when a
      segment has no macro-kernel form.
    - ``fastpath``: Tier 1 — machine-level trace fusion.  ``None``
      defers to the process-wide default
      (:func:`repro.ncore.fastpath.set_fastpath_default`).
    - ``sanitize``: arm the shadow-SRAM sanitizer on the executor's
      machine (orthogonal to tier choice; costs when armed only).
    - ``oracle``: Tier-3 differential checking against the per-node
      interpreter — ``"first"`` verifies each (segment, shape) once on
      its benchmark dispatch (the default), ``"always"`` on every
      dispatch, ``"off"`` never.
    """

    predict: bool = False
    replay: bool = True
    replay_capacity: int = 128
    codegen: bool = True
    fastpath: bool | None = None
    sanitize: bool = False
    oracle: str = "first"

    def __post_init__(self) -> None:
        if self.oracle not in _ORACLE_MODES:
            raise ValueError(
                f"oracle must be one of {_ORACLE_MODES}, got {self.oracle!r}"
            )
        if self.replay_capacity < 1:
            raise ValueError("replay_capacity must be at least 1")
        if self.predict:
            raise NotImplementedError(
                "the 'predict' tier is reserved for the learned "
                "cycle-prediction backend (ROADMAP item 3)"
            )

    @classmethod
    def for_tier(cls, tier: str) -> "TierPolicy":
        """The policy that forces one named tier (the ``--tier`` flag)."""
        if tier == "auto":
            return cls()
        if tier == "interpreter":
            return cls(replay=False, codegen=False, fastpath=False)
        if tier == "fastpath":
            return cls(replay=False, codegen=False, fastpath=True)
        if tier == "replay":
            return cls(replay=True, codegen=False)
        if tier == "codegen":
            return cls(replay=False, codegen=True)
        raise ValueError(
            f"unknown tier {tier!r}; choose from {TIER_CHOICES}"
        )


_default_policy = TierPolicy()


def get_default_tier_policy() -> TierPolicy:
    """The process-wide policy used when an executor is given none."""
    return _default_policy


def set_default_tier_policy(policy: TierPolicy) -> TierPolicy:
    """Replace the process-wide default policy; returns the previous one."""
    global _default_policy
    previous = _default_policy
    _default_policy = policy
    return previous


#: Sentinel distinguishing 'legacy kwarg not passed' from any real value.
_UNSET: Any = object()

_legacy_warned: set[str] = set()


def _warn_legacy_kwarg(name: str, replacement: str) -> None:
    if name in _legacy_warned:
        return
    _legacy_warned.add(name)
    warnings.warn(
        f"NcoreExecutor({name}=...) is deprecated; pass "
        f"policy=TierPolicy({replacement}) instead",
        DeprecationWarning,
        stacklevel=3,
    )


class NcoreExecutor:
    """Owns one socket's Ncore through the kernel driver; runs batches.

    The load-time verification gate: unless ``verify=False``, the model's
    graph and every lowered Loadable are re-checked with the
    ``repro.analyze`` stack and an error-severity finding raises
    :class:`~repro.analyze.AnalysisError` before the device is opened.
    """

    def __init__(
        self,
        model: CompiledModel,
        soc: ChaSoc | None = None,
        owner: str = "ncore-executor",
        verify: bool = True,
        policy: TierPolicy | str | None = None,
        macro_kernels: MacroKernelSet | None = None,
        *,
        replay: Any = _UNSET,
        replay_capacity: Any = _UNSET,
        fastpath: Any = _UNSET,
        sanitize: Any = _UNSET,
    ) -> None:
        self.model = model
        self.soc = soc or ChaSoc()
        self.policy = self._resolve_policy(
            policy, replay=replay, replay_capacity=replay_capacity,
            fastpath=fastpath, sanitize=sanitize,
        )
        if verify:
            from repro.analyze import analyze_model, enforce

            with get_tracer().span("executor.verify", track="delegate", model=model.name):
                enforce(
                    analyze_model(model, config=self.soc.ncore.config),
                    context=model.name,
                )
        self.driver = NcoreKernelDriver(self.soc)
        self.driver.probe()
        self.mapping = self.driver.open(owner)
        self._clock = self.soc.ncore.config.clock_hz
        self._dma_bpc = self.soc.ncore_to_dram_bandwidth() / self._clock
        # Tier 2: repeated queries with identical feeds replay cached
        # output tensors instead of re-running the quantized kernels.
        # Keys bind the segment to the loadable fingerprint (graph +
        # device config), so a different model or config never aliases;
        # timing is recomputed per call (it depends on batch size, not
        # on the cached functional outputs).
        self._replay_cache: OrderedDict[str, dict[str, np.ndarray]] = OrderedDict()
        self._replay_prefix: str | None = None
        self.replay_stats = {"hits": 0, "misses": 0}
        # Tier 3: AOT macro-kernels — passed in explicitly, or recovered
        # from the compile cache under the model's content key.  The
        # dispatcher benchmarks each kernel's variants once per input
        # shape and pins the winner; ``policy.oracle`` controls the
        # per-node-interpreter differential check.
        self._macro_kernels = (
            self._load_macro_kernels(macro_kernels) if self.policy.codegen else None
        )
        self.dispatcher = MultiKernelDispatcher(oracle=self.policy.oracle)
        #: Tier that served the most recent query (attribution label).
        self.last_tier: str | None = None
        if self.policy.sanitize:
            self.mapping.machine().arm_sanitizer(True)

    @staticmethod
    def _resolve_policy(
        policy: TierPolicy | str | None,
        *,
        replay: Any,
        replay_capacity: Any,
        fastpath: Any,
        sanitize: Any,
    ) -> TierPolicy:
        """One policy from the new argument plus any legacy kwargs."""
        if isinstance(policy, str):
            resolved = TierPolicy.for_tier(policy)
        elif policy is None:
            resolved = get_default_tier_policy()
        else:
            resolved = policy
        overrides: dict[str, Any] = {}
        if replay is not _UNSET:
            _warn_legacy_kwarg("replay", f"replay={bool(replay)}")
            overrides["replay"] = bool(replay)
        if replay_capacity is not _UNSET:
            _warn_legacy_kwarg(
                "replay_capacity", f"replay_capacity={int(replay_capacity)}"
            )
            overrides["replay_capacity"] = max(1, int(replay_capacity))
        if fastpath is not _UNSET:
            _warn_legacy_kwarg("fastpath", f"fastpath={bool(fastpath)}")
            overrides["fastpath"] = bool(fastpath)
        if sanitize is not _UNSET:
            _warn_legacy_kwarg("sanitize", f"sanitize={bool(sanitize)}")
            overrides["sanitize"] = bool(sanitize)
        return dataclass_replace(resolved, **overrides) if overrides else resolved

    def _load_macro_kernels(
        self, macro_kernels: MacroKernelSet | None
    ) -> MacroKernelSet | None:
        """The Tier-3 artifact: explicit argument, else the compile cache."""
        if macro_kernels is not None:
            return macro_kernels
        info = getattr(self.model, "compile_info", None) or {}
        key = info.get("key")
        if not key:
            return None
        from repro.compiler.cache import get_compile_cache

        cache = get_compile_cache()
        if cache is None:
            return None
        artifact = cache.lookup_artifact(key, CODEGEN_ARTIFACT_KIND)
        return artifact if isinstance(artifact, MacroKernelSet) else None

    @property
    def replay(self) -> bool:
        """Whether the Tier-2 replay cache is enabled (policy view)."""
        return self.policy.replay

    @property
    def macro_kernels(self) -> MacroKernelSet | None:
        return self._macro_kernels

    @property
    def _replay_capacity(self) -> int:
        return self.policy.replay_capacity

    def close(self) -> None:
        self.driver.close(self.mapping)

    # ------------------------------------------------------------------
    # Tier-2 segment replay cache
    # ------------------------------------------------------------------

    def _replay_key(self, feeds: dict[str, np.ndarray]) -> str:
        if self._replay_prefix is None:
            from repro.compiler.fingerprint import fingerprint_config, fingerprint_graph

            self._replay_prefix = (
                fingerprint_graph(self.model.graph)
                + ":"
                + fingerprint_config(self.soc.ncore.config)
            )
        digest = hashlib.sha256(self._replay_prefix.encode())
        for name in sorted(feeds):
            array = np.ascontiguousarray(feeds[name])
            digest.update(name.encode())
            digest.update(str(array.dtype).encode())
            digest.update(str(array.shape).encode())
            digest.update(array.tobytes())
        return digest.hexdigest()

    def _replay_lookup(self, key: str) -> dict[str, np.ndarray] | None:
        cached = self._replay_cache.get(key)
        metrics = get_metrics()
        if cached is None:
            self.replay_stats["misses"] += 1
            if metrics.enabled:
                metrics.counter("ncore.replay.misses").inc()
            return None
        self._replay_cache.move_to_end(key)
        self.replay_stats["hits"] += 1
        if metrics.enabled:
            metrics.counter("ncore.replay.hits").inc()
        return {name: value.copy() for name, value in cached.items()}

    def _replay_store(self, key: str, outputs: dict[str, np.ndarray]) -> None:
        self._replay_cache[key] = {name: value.copy() for name, value in outputs.items()}
        self._replay_cache.move_to_end(key)
        while len(self._replay_cache) > self._replay_capacity:
            self._replay_cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Tier-3 AOT macro-kernel execution
    # ------------------------------------------------------------------

    def _segment_oracle(self, segment: Segment, kernel: MacroKernel):
        """A closure computing the segment's outputs with the per-node
        interpreter from a read-only environment (the Tier-3 oracle)."""
        graph = self.model.graph

        def oracle(env: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
            scratch = dict(env)
            for node in segment.nodes:
                ins = [scratch[name] for name in node.inputs]
                outs = _execute_quantized_node(graph, node, ins)
                for name, value in zip(node.outputs, outs, strict=False):
                    scratch[name] = value
            return {name: scratch[name] for name in kernel.outputs}

        return oracle

    def _run_codegen(self, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """One query through the macro-kernel dispatcher.

        Walks the partitioned segments in execution order — segments are
        maximal contiguous runs covering every node, so this is the same
        walk ``execute_quantized`` does, chunked.  Covered segments go
        through the dispatcher; uncovered ones run per node, keeping the
        whole graph bit-exact regardless of coverage.
        """
        assert self._macro_kernels is not None
        graph = self.model.graph
        values: dict[str, np.ndarray] = {}
        for name, tensor in graph.tensors.items():
            if tensor.is_constant:
                values[name] = tensor.data
        for name in graph.inputs:
            if name not in feeds:
                from repro.graph.gir import GraphError

                raise GraphError(f"missing feed for graph input {name!r}")
            values[name] = np.asarray(feeds[name])
        check_oracle = self.policy.oracle != "off"
        for index, segment in enumerate(self.model.segments):
            kernel = self._macro_kernels.get(index)
            if kernel is None:
                for node in segment.nodes:
                    ins = [values[name] for name in node.inputs]
                    outs = _execute_quantized_node(graph, node, ins)
                    for name, value in zip(node.outputs, outs, strict=False):
                        values[name] = value
                continue
            oracle = (
                self._segment_oracle(segment, kernel) if check_oracle else None
            )
            self.dispatcher.dispatch(kernel, values, oracle)
        return {name: values[name] for name in graph.outputs}

    # ------------------------------------------------------------------
    # The tier ladder
    # ------------------------------------------------------------------

    def _fastpath_enabled(self) -> bool:
        if self.policy.fastpath is not None:
            return self.policy.fastpath
        from repro.ncore.fastpath import get_fastpath_default

        return get_fastpath_default()

    def _run_quantized(
        self, feeds: dict[str, np.ndarray]
    ) -> tuple[dict[str, np.ndarray], str]:
        """Run one query down the tier ladder; returns (outputs, tier).

        Precedence follows :class:`TierPolicy`: replay (Tier 2) short-
        circuits everything, Tier-3 macro-kernels run when compiled
        artifacts exist, and the trace-fused / interpreter walk is the
        floor.  The tier label is what actually served the query.
        """
        policy = self.policy
        key: str | None = None
        if policy.replay:
            key = self._replay_key(feeds)
            cached = self._replay_lookup(key)
            if cached is not None:
                self.last_tier = TIER_REPLAY
                return cached, TIER_REPLAY
        if self._macro_kernels is not None:
            outputs = self._run_codegen(feeds)
            tier = TIER_CODEGEN
        else:
            outputs = execute_quantized(self.model.graph, feeds)
            tier = TIER_FASTPATH if self._fastpath_enabled() else TIER_INTERPRETER
        if key is not None:
            self._replay_store(key, outputs)
        self.last_tier = tier
        return outputs, tier

    def _attribute(self, tiers: dict[str, int], batch: int) -> None:
        """Feed the cycle-attribution collector, tier-labelled.

        ``tiers`` maps the tier that served each query to its count —
        executed queries land on the tier that ran them (codegen,
        fastpath or interpreter); replay hits are labelled ``replay`` so
        a harvest shows the cycles *avoided*.
        """
        attrib = get_attrib()
        if not attrib.enabled:
            return
        for tier, count in tiers.items():
            if count:
                attrib.record_model_run(
                    self.model, tier, batch=batch, count=count,
                    dma_bytes_per_cycle=self._dma_bpc,
                )

    # ------------------------------------------------------------------
    # Timing model (the NKL cycle schedules + the core cost model)
    # ------------------------------------------------------------------

    def ncore_seconds(self) -> float:
        """Ncore portion of one single-batch inference."""
        return self.model.ncore_cycles(self._dma_bpc) / self._clock

    def ncore_seconds_batched(self, batch: int) -> float:
        """Per-item Ncore time with a batch amortizing streamed weights.

        Pinned weights never stream so batching changes nothing for them;
        streamed weights are fetched once per batch while compute scales
        with the batch (the section VI-A arithmetic-intensity argument).
        """
        if batch < 1:
            raise ValueError("batch must be at least 1")
        compute_cycles = 0
        streamed_bytes = 0
        for index in self.model.ncore_segments:
            loadable = self.model.loadables[index]
            compute_cycles += loadable.compute_cycles
            if not loadable.memory_plan.weights_pinned:
                streamed_bytes += loadable.weight_image_bytes
        dma_cycles = streamed_bytes / self._dma_bpc
        total = max(compute_cycles * batch, dma_cycles) + min(compute_cycles, dma_cycles)
        return total / batch / self._clock

    def x86_graph_seconds(self) -> float:
        """x86 portion attributable to non-delegated graph segments."""
        from repro.runtime.delegate import DELEGATE_TRANSITION_SECONDS, _x86_node_cost

        core = self.soc.cores[0]
        metrics = get_metrics()
        total = 0.0
        for index in self.model.x86_segments:
            segment = self.model.segments[index]
            total += DELEGATE_TRANSITION_SECONDS
            if metrics.enabled:
                metrics.counter("delegate.transitions").inc()
            for node in segment.nodes:
                seconds = core.task_seconds(**_x86_node_cost(self.model.graph, node))
                total += seconds
                if metrics.enabled:
                    # Table IX attribution: where the x86 fallback time goes.
                    metrics.counter(
                        f"x86.fallback.{node.op}.cycles", unit="cycles"
                    ).inc(seconds * core.clock_hz)
                    metrics.counter("x86.fallback.seconds", unit="s").inc(seconds)
        return total

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, feeds: dict[str, np.ndarray]):
        """Run one query: functional outputs plus the timing split."""
        from repro.runtime.delegate import RunResult, RunTiming

        outputs, tier = self._run_quantized(feeds)
        self._attribute({tier: 1}, batch=1)
        timing = RunTiming(
            ncore_seconds=self.ncore_seconds(),
            x86_seconds=self.x86_graph_seconds(),
        )
        return RunResult(outputs=outputs, timing=timing)

    def execute_batch(self, batch_feeds: list[dict[str, np.ndarray]]):
        """Run a batch: per-query outputs, batched Ncore amortization."""
        from repro.runtime.delegate import RunResult, RunTiming

        size = len(batch_feeds)
        per_item_ncore = self.ncore_seconds_batched(size)
        x86 = self.x86_graph_seconds()
        results = []
        tiers: dict[str, int] = {}
        for feeds in batch_feeds:
            outputs, tier = self._run_quantized(feeds)
            tiers[tier] = tiers.get(tier, 0) + 1
            results.append(RunResult(
                outputs=outputs,
                timing=RunTiming(ncore_seconds=per_item_ncore, x86_seconds=x86),
            ))
        self._attribute(tiers, batch=size)
        return results


@dataclass
class QueryTicket:
    """One submitted query's lifecycle, stamped in engine time."""

    index: int
    owner: str
    submitted_at: float
    feeds: dict[str, np.ndarray] = field(repr=False, default_factory=dict)
    enqueued_at: float | None = None     # entered the batch queue
    batch_started_at: float | None = None
    ncore_done_at: float | None = None
    completed_at: float | None = None
    batch_size: int = 0
    result: object | None = None         # delegate.RunResult once done
    done_event: Event | None = field(repr=False, default=None)
    trace: TraceContext | None = field(repr=False, default=None)

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def latency_seconds(self) -> float | None:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def queue_wait_seconds(self) -> float | None:
        if self.batch_started_at is None or self.enqueued_at is None:
            return None
        return self.batch_started_at - self.enqueued_at


class SessionHandle:
    """A lightweight client of one :class:`EngineExecutor`.

    Replaces the device-owning ``InferenceSession`` for concurrent use:
    holding a handle grants nothing exclusive — submission order across
    all handles decides batching.
    """

    def __init__(self, executor: "EngineExecutor", owner: str) -> None:
        self.executor = executor
        self.owner = owner
        self.tickets: list[QueryTicket] = []

    def submit(self, feeds: dict[str, np.ndarray]) -> QueryTicket:
        ticket = self.executor.submit(feeds, owner=self.owner)
        self.tickets.append(ticket)
        return ticket

    def poll(self, ticket: QueryTicket):
        """The query's result, or None while it is still in flight."""
        return ticket.result if ticket.done else None


class EngineExecutor:
    """An :class:`NcoreExecutor` mounted on a discrete-event engine.

    Queries flow submit -> x86 pre work (worker pool) -> dynamic batch
    queue -> Ncore executor (one batch in flight) -> x86 post work
    (worker pool) -> completion.  Every stage is stamped on the ticket
    and emitted as tracer spans, so a Perfetto trace decomposes latency
    into queue wait vs batch assembly vs Ncore vs x86 time.
    """

    def __init__(
        self,
        engine: Engine,
        executor: NcoreExecutor,
        max_batch: int = 8,
        max_wait: float = 200e-6,
        workers: int = 7,
        pre_seconds: float | None = None,
    ) -> None:
        from repro.runtime.delegate import DELEGATE_TRANSITION_SECONDS

        self.engine = engine
        self.executor = executor
        self.queue = BatchQueue(engine, max_batch=max_batch, max_wait=max_wait,
                                name=f"{executor.model.name}.batch-queue")
        self.pool = WorkerPool(engine, workers=workers)
        self.ncore = Resource(engine, capacity=1, name="ncore-executor")
        # Submit-side framework/buffer-handoff cost, on a worker.
        self.pre_seconds = (
            DELEGATE_TRANSITION_SECONDS if pre_seconds is None else pre_seconds
        )
        self.tickets: list[QueryTicket] = []
        self._dispatcher = engine.process(self._dispatch_loop(), name="ncore-dispatch")

    def session(self, owner: str = "session") -> SessionHandle:
        return SessionHandle(self, owner)

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------

    def submit(self, feeds: dict[str, np.ndarray], owner: str = "anonymous") -> QueryTicket:
        index = len(self.tickets)
        ticket = QueryTicket(
            index=index, owner=owner,
            submitted_at=self.engine.now, feeds=feeds,
            done_event=self.engine.event(),
            # Trace ids are minted from (model, sequence) — deterministic,
            # so a seeded run exports byte-identical trace files.
            trace=(
                mint_trace(self.executor.model.name, index)
                if get_tracer().enabled else None
            ),
        )
        self.tickets.append(ticket)
        self.engine.process(self._query_body(ticket), name=f"query[{ticket.index}]")
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("engine.queries_submitted").inc()
        return ticket

    def poll(self, ticket: QueryTicket):
        return ticket.result if ticket.done else None

    def _query_body(self, ticket: QueryTicket):
        # x86 pre work on the worker pool (framework callback, handoff).
        if self.pre_seconds > 0:
            yield self.pool.submit(self.pre_seconds)
        ticket.enqueued_at = self.engine.now
        self.queue.put(ticket)
        yield ticket.done_event
        return ticket.result

    # ------------------------------------------------------------------
    # Dispatch path (one batch in flight on the Ncore executor)
    # ------------------------------------------------------------------

    def _dispatch_loop(self):
        engine = self.engine
        while True:
            batch = yield self.queue.get()
            tickets: list[QueryTicket] = batch.items
            yield self.ncore.request()
            started = engine.now
            for ticket in tickets:
                ticket.batch_started_at = started
                ticket.batch_size = batch.size
            # Functional execution is eager; timing advances the clock.
            results = self.executor.execute_batch([t.feeds for t in tickets])
            ncore_seconds = (
                self.executor.ncore_seconds_batched(batch.size) * batch.size
            )
            yield engine.timeout(ncore_seconds)
            self.ncore.release()
            ncore_done = engine.now
            engine.trace_span(
                f"batch[{batch.sequence}]", "engine.ncore", started, ncore_done,
                args={"size": batch.size, "reason": batch.reason,
                      "assembly_us": batch.assembly_seconds * 1e6,
                      "trace_ids": [
                          t.trace.trace_id for t in tickets if t.trace is not None
                      ]},
            )
            for ticket, result in zip(tickets, results, strict=True):
                ticket.ncore_done_at = ncore_done
                engine.process(
                    self._postprocess(ticket, result),
                    name=f"post[{ticket.index}]",
                )

    def _postprocess(self, ticket: QueryTicket, result):
        # Per-query x86 post work (non-delegated segments) on the pool.
        x86_seconds = result.timing.x86_seconds
        if x86_seconds > 0:
            yield self.pool.submit(x86_seconds)
        ticket.completed_at = self.engine.now
        ticket.result = result
        self._trace_ticket(ticket)
        metrics = get_metrics()
        if metrics.enabled:
            model = self.executor.model.name
            metrics.counter("engine.queries_completed").inc()
            metrics.histogram("engine.latency_seconds", unit="s").observe(
                ticket.latency_seconds
            )
            # Labelled, windowed view of the same signal: rolling
            # percentiles per model, in engine (simulated) time.
            metrics.windowed_histogram(
                "engine.latency_seconds", unit="s", labels={"model": model}
            ).observe(ticket.latency_seconds, ts=self.engine.now)
        ticket.done_event.succeed(result)

    def _trace_ticket(self, ticket: QueryTicket) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            return
        context = ticket.trace
        if context is not None and ticket.completed_at is not None:
            # Root span of the query's causal tree: submit -> completion.
            self.engine.trace_span(
                f"query[{ticket.index}]", "engine.queries",
                ticket.submitted_at, ticket.completed_at,
                args={"owner": ticket.owner, "batch_size": ticket.batch_size,
                      "model": self.executor.model.name},
                context=context,
            )
        spans = [
            ("pre", ticket.submitted_at, ticket.enqueued_at),
            ("queue.wait", ticket.enqueued_at, ticket.batch_started_at),
            ("ncore", ticket.batch_started_at, ticket.ncore_done_at),
            ("x86.post", ticket.ncore_done_at, ticket.completed_at),
        ]
        for stage, start, end in spans:
            if start is None or end is None:
                continue
            self.engine.trace_span(
                f"query[{ticket.index}].{stage}", "engine.queries", start, end,
                args={"owner": ticket.owner, "batch_size": ticket.batch_size,
                      "stage": stage},
                context=context.child(stage) if context is not None else None,
            )

    # ------------------------------------------------------------------

    def drain(self, max_events: int = 50_000_000) -> None:
        """Flush the open batch and run the engine until all queries finish."""
        self.queue.flush()
        self.engine.run(max_events=max_events)
        while any(not t.done for t in self.tickets):
            self.queue.flush()
            self.engine.run(max_events=max_events)

    def close(self) -> None:
        self.executor.close()
