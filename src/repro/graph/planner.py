"""Scratchpad memory planning and weight scheduling (section V-B).

"Since Ncore uses software-managed scratchpad memories rather than a cache,
the GCL and NKL perform the appropriate memory management during code
generation.  As weights must be transferred via DMA into the Ncore
scratchpad memories from DDR, the GCL attempts to schedule the weights to
be non-speculatively prefetched as early as possible.  In the case of
MobileNetV1, the GCL determines that all the model's weights fit in on-chip
SRAM, and promotes the weight buffers to become persistent."

The planner allocates activation tensors to data-RAM rows with a linear-scan
allocator over tensor live ranges, and decides per-model between *pinned*
weights (everything resident in the 8 MB weight RAM) and *streamed* weights
(double-buffered, with an as-early-as-possible prefetch schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.gir import Graph
from repro.graph.partitioner import Segment
from repro.ncore.config import CHA_NCORE, NcoreConfig


class PlanningError(RuntimeError):
    """The segment cannot be placed in Ncore's scratchpad memories."""


@dataclass(frozen=True)
class RowRange:
    """A contiguous run of RAM rows."""

    start: int
    rows: int

    @property
    def end(self) -> int:
        return self.start + self.rows


@dataclass(frozen=True)
class Prefetch:
    """One scheduled weight DMA: issue before ``issue_at_node`` executes."""

    tensor: str
    issue_at_node: int  # index into the segment's node list
    needed_at_node: int
    num_bytes: int


@dataclass
class MemoryPlan:
    """Placement of one Ncore segment into the scratchpads."""

    data_allocs: dict[str, RowRange] = field(default_factory=dict)
    weight_allocs: dict[str, RowRange] = field(default_factory=dict)
    weights_pinned: bool = True
    prefetches: list[Prefetch] = field(default_factory=list)
    data_rows_used: int = 0
    weight_rows_used: int = 0
    row_bytes: int = CHA_NCORE.row_bytes  # RAM row width the plan assumed

    @property
    def weight_bytes(self) -> int:
        return sum(r.rows for r in self.weight_allocs.values()) * self.row_bytes


def _rows_for(graph: Graph, tensor_name: str, row_bytes: int) -> int:
    num_bytes = graph.tensor(tensor_name).type.num_bytes
    return max(1, -(-num_bytes // row_bytes))


def _live_ranges(graph: Graph, segment: Segment) -> dict[str, tuple[int, int]]:
    """(first producing / arriving index, last consuming index) per tensor."""
    ranges: dict[str, tuple[int, int]] = {}
    boundary_inputs = set(segment.input_tensors(graph))
    boundary_outputs = set(segment.output_tensors(graph))
    last = len(segment.nodes) - 1
    for name in boundary_inputs:
        ranges[name] = (0, 0)
    for index, node in enumerate(segment.nodes):
        for name in node.inputs:
            if graph.tensor(name).is_constant:
                continue
            start = ranges.get(name, (index, index))[0]
            ranges[name] = (start, index)
        for name in node.outputs:
            ranges[name] = (index, ranges.get(name, (index, index))[1])
    for name in boundary_outputs:
        start, _ = ranges[name]
        ranges[name] = (start, last)  # must survive until readout
    return ranges


def _linear_scan(
    ranges: dict[str, tuple[int, int]],
    sizes: dict[str, int],
    capacity_rows: int,
) -> dict[str, RowRange]:
    """First-fit linear-scan register (row) allocation."""
    allocs: dict[str, RowRange] = {}
    # Free list of row intervals, kept sorted.
    free: list[list[int]] = [[0, capacity_rows]]
    active: list[tuple[int, str]] = []  # (last_use, tensor)
    for name, (start, _) in sorted(ranges.items(), key=lambda kv: (kv[1][0], kv[0])):
        # Expire tensors whose live range ended before this one starts.
        still_active = []
        for last_use, other in active:
            if last_use < start:
                _release(free, allocs[other])
            else:
                still_active.append((last_use, other))
        active = still_active
        rows = sizes[name]
        placed = False
        for interval in free:
            if interval[1] - interval[0] >= rows:
                allocs[name] = RowRange(interval[0], rows)
                interval[0] += rows
                placed = True
                break
        if not placed:
            raise PlanningError(
                f"tensor {name!r} needs {rows} rows but the scratchpad is full"
            )
        free[:] = [iv for iv in free if iv[0] < iv[1]]
        active.append((ranges[name][1], name))
    return allocs


def _release(free: list[list[int]], rng: RowRange) -> None:
    free.append([rng.start, rng.end])
    free.sort()
    merged: list[list[int]] = []
    for interval in free:
        if merged and merged[-1][1] >= interval[0]:
            merged[-1][1] = max(merged[-1][1], interval[1])
        else:
            merged.append(interval)
    free[:] = merged


def plan_memory(
    graph: Graph, segment: Segment, config: NcoreConfig | None = None
) -> MemoryPlan:
    """Place one Ncore segment's tensors into the scratchpad RAMs."""
    config = config or NcoreConfig()
    row_bytes = config.row_bytes
    plan = MemoryPlan(row_bytes=row_bytes)

    # --- activations: linear scan over live ranges in the data RAM ---
    ranges = _live_ranges(graph, segment)
    sizes = {name: _rows_for(graph, name, row_bytes) for name in ranges}
    plan.data_allocs = _linear_scan(ranges, sizes, config.sram_rows)
    if plan.data_allocs:
        plan.data_rows_used = max(r.end for r in plan.data_allocs.values())

    # --- weights: pin when everything fits, stream otherwise ---
    weight_tensors: list[tuple[int, str]] = []
    seen: set[str] = set()
    for index, node in enumerate(segment.nodes):
        for name in node.inputs:
            tensor = graph.tensor(name)
            if tensor.is_constant and name not in seen:
                seen.add(name)
                weight_tensors.append((index, name))
    weight_rows = {name: _rows_for(graph, name, row_bytes) for _, name in weight_tensors}
    total_rows = sum(weight_rows.values())

    if total_rows <= config.sram_rows:
        # Promote weight buffers to persistent (the MobileNet case).
        plan.weights_pinned = True
        cursor = 0
        for _, name in weight_tensors:
            plan.weight_allocs[name] = RowRange(cursor, weight_rows[name])
            cursor += weight_rows[name]
        plan.weight_rows_used = cursor
    else:
        # Stream through a double buffer.  A layer whose weights exceed
        # half the weight RAM is tiled: its matmul is split into chunks
        # that each fit one buffer half, prefetched back to back (the
        # "intra-layer weight tiling" case — GNMT's LSTM and projection
        # matrices need it).
        plan.weights_pinned = False
        half = config.sram_rows // 2
        for index, name in weight_tensors:
            rows = weight_rows[name]
            chunks = max(1, -(-rows // half))
            chunk_rows = -(-rows // chunks)
            chunk_bytes = -(-graph.tensor(name).type.num_bytes // chunks)
            for chunk in range(chunks):
                buffer_base = 0 if (len(plan.prefetches) % 2 == 0) else half
                plan.weight_allocs.setdefault(name, RowRange(buffer_base, chunk_rows))
                plan.prefetches.append(
                    Prefetch(
                        tensor=name if chunks == 1 else f"{name}#chunk{chunk}",
                        # As early as possible: one layer ahead (the other
                        # buffer half is still in use before that).
                        issue_at_node=max(0, index - 1),
                        needed_at_node=index,
                        num_bytes=chunk_bytes,
                    )
                )
        plan.weight_rows_used = config.sram_rows
    return plan
