"""The Ncore Loadable: everything needed to run a model on Ncore.

Section V-B: "The final result is an Ncore Loadable which contains
everything needed to execute the DL model on Ncore" — the lowered kernels,
the memory plan, the weight images and the DMA schedule.  A
:class:`CompiledModel` strings loadables and x86 segments together in
execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.graph.gir import Graph
from repro.graph.partitioner import Segment
from repro.graph.planner import MemoryPlan
from repro.ncore.config import CHA_NCORE


@dataclass
class KernelInvocation:
    """One lowered operation: which NKL kernel runs a node, and its cost."""

    node_name: str
    op: str
    kernel: str
    cycles: int
    macs: int = 0
    weight_bytes: int = 0
    output_tensor: str = ""
    meta: dict[str, Any] = field(default_factory=dict)
    lanes: int = CHA_NCORE.lanes  # SIMD width the kernel was lowered for

    @property
    def utilization(self) -> float:
        """MAC-lane utilization of this kernel (1.0 = all lanes busy)."""
        if self.cycles == 0:
            return 0.0
        return self.macs / (self.cycles * self.lanes)


@dataclass
class NcoreLoadable:
    """A compiled Ncore segment."""

    name: str
    segment: Segment
    memory_plan: MemoryPlan
    kernels: list[KernelInvocation] = field(default_factory=list)
    weight_image_bytes: int = 0

    @property
    def compute_cycles(self) -> int:
        return sum(k.cycles for k in self.kernels)

    def total_cycles(self, dma_bytes_per_cycle: float = 40.96) -> int:
        """Cycle estimate with weight DMA overlapped against compute.

        Pinned weights cost a one-time preload (not counted per inference).
        Streamed weights prefetch one layer ahead; a layer stalls only when
        its weight DMA outlives the previous layer's compute.
        """
        total = 0
        previous_compute = 0
        for kernel in self.kernels:
            stall = 0
            if not self.memory_plan.weights_pinned and kernel.weight_bytes:
                dma_cycles = int(np.ceil(kernel.weight_bytes / dma_bytes_per_cycle))
                stall = max(0, dma_cycles - previous_compute)
            total += kernel.cycles + stall
            previous_compute = kernel.cycles
        return total

    def seconds(self, clock_hz: float = 2.5e9, dma_bytes_per_cycle: float = 40.96) -> float:
        return self.total_cycles(dma_bytes_per_cycle) / clock_hz

    @property
    def mean_utilization(self) -> float:
        lane_cycles = sum(k.cycles * k.lanes for k in self.kernels)
        if lane_cycles == 0:
            return 0.0
        return sum(k.macs for k in self.kernels) / lane_cycles


@dataclass
class CompiledModel:
    """The full compilation result: segments in execution order.

    ``compile_info`` carries the compiler driver's provenance — the
    content-address key, pipeline id and per-stage change stats — when
    the model came through ``repro.compiler``; it stays empty for
    hand-assembled models.  Compiled models are treated as immutable
    artifacts once built (the compile cache hands the same object to
    every hit).
    """

    name: str
    graph: Graph
    segments: list[Segment]
    loadables: dict[int, NcoreLoadable] = field(default_factory=dict)  # by segment idx
    compile_info: dict[str, Any] = field(default_factory=dict)

    @property
    def ncore_segments(self) -> list[int]:
        return [i for i, s in enumerate(self.segments) if s.target == "ncore"]

    @property
    def x86_segments(self) -> list[int]:
        return [i for i, s in enumerate(self.segments) if s.target == "x86"]

    def ncore_cycles(self, dma_bytes_per_cycle: float = 40.96) -> int:
        return sum(
            self.loadables[i].total_cycles(dma_bytes_per_cycle)
            for i in self.ncore_segments
            if i in self.loadables
        )

    def summary(self) -> str:
        """Human-readable compilation report (utilization, DMA, placement)."""
        lines = [f"CompiledModel {self.name!r}: {len(self.segments)} segments"]
        for i, segment in enumerate(self.segments):
            line = f"  [{i}] {segment.target:<5} {len(segment.nodes):>3} nodes"
            if i in self.loadables:
                loadable = self.loadables[i]
                pinned = "pinned" if loadable.memory_plan.weights_pinned else "streamed"
                line += (
                    f"  {loadable.compute_cycles:>9} cycles"
                    f"  util {loadable.mean_utilization:5.1%}"
                    f"  weights {pinned}"
                )
            lines.append(line)
        return "\n".join(lines)


def render_partition(model: CompiledModel, max_nodes_per_segment: int = 6) -> str:
    """A Fig. 9-style rendering of the delegate's graph modification:
    which subgraphs run on Ncore, which fall back to x86."""
    lines = [f"Delegate partition of {model.name!r}:"]
    for index, segment in enumerate(model.segments):
        marker = "[Ncore]" if segment.target == "ncore" else "[ x86 ]"
        lines.append(f"  {marker} segment {index} ({len(segment.nodes)} nodes)")
        shown = segment.nodes[:max_nodes_per_segment]
        for node in shown:
            lines.append(f"      {node.op:<18} {node.name}")
        if len(segment.nodes) > len(shown):
            lines.append(f"      ... {len(segment.nodes) - len(shown)} more")
    return "\n".join(lines)
