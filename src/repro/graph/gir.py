"""Ncore's graph intermediate representation (GIR).

Framework graph formats (TensorFlow, TensorFlow-Lite, PyTorch, MXNet) are
all "graph intermediate representations with subtle differences"; the GCL
imports each into this one IR (section V-B).  The GIR is a flat,
topologically ordered list of nodes over named tensors.

Tensors are NHWC (batch, height, width, channels) unless a node's kernel
chooses an internal Ncore layout at lowering time.  Convolution weights are
HWIO (kh, kw, in_channels, out_channels); depthwise weights are HWC
(kh, kw, channels); fully-connected weights are (in_features, out_features).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.dtypes import NcoreDType, QuantParams


class GraphError(ValueError):
    """Raised on malformed graphs or invalid graph edits."""


# The operator vocabulary.  Ops outside this set are rejected at insert
# time so that passes can rely on a closed vocabulary.
OP_TYPES = frozenset(
    {
        "conv2d",
        "depthwise_conv2d",
        "fully_connected",
        "bias_add",
        "batch_norm",
        "relu",
        "relu6",
        "tanh",
        "sigmoid",
        "softmax",
        "add",
        "mul",
        "concat",
        "pad",
        "max_pool",
        "avg_pool",
        "mean",            # global spatial mean (ResNet head)
        "reshape",
        "slice",
        "quantize",
        "dequantize",
        "embedding",
        "lstm_cell",
        "lstm_step",       # sequence-projected LSTM step (split wx/wh weights)
        "attention",
        "nms",             # SSD non-maximum suppression (x86-only)
        "identity",
    }
)

# Attribute names with graph-wide meaning.
ACTIVATION_ATTR = "activation"  # fused activation: none|relu|relu6|tanh|sigmoid


@dataclass(frozen=True)
class TensorType:
    """Shape and element type of a tensor.

    ``dtype`` is the string ``"float32"``, the string ``"int32"`` (index
    tensors, e.g. token ids), or an :class:`~repro.dtypes.NcoreDType` for
    quantized / reduced types.
    """

    shape: tuple[int, ...]
    dtype: NcoreDType | str = "float32"

    def __post_init__(self) -> None:
        if any(dim < 1 for dim in self.shape):
            raise GraphError(f"tensor dims must be positive, got {self.shape}")

    @property
    def num_elements(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def element_bytes(self) -> int:
        if self.dtype in ("float32", "int32"):
            return 4
        from repro.dtypes import dtype_info

        return dtype_info(self.dtype).bytes_per_element

    @property
    def num_bytes(self) -> int:
        return self.num_elements * self.element_bytes


@dataclass
class Tensor:
    """One value flowing through the graph.

    Constant tensors (weights, biases) carry ``data``; activations do not.
    Quantized tensors carry ``quant`` describing their affine parameters.
    """

    name: str
    type: TensorType
    data: np.ndarray | None = None
    quant: QuantParams | None = None
    # Memoized (stamp, sha256) of ``data``, maintained by
    # repro.compiler.fingerprint; reassigning ``data`` invalidates it.
    _content_digest: tuple[Any, str] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def is_constant(self) -> bool:
        return self.data is not None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.type.shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "const" if self.is_constant else "act"
        return f"Tensor({self.name!r}, {self.shape}, {self.type.dtype}, {kind})"


@dataclass
class Node:
    """One operation."""

    name: str
    op: str
    inputs: list[str]
    outputs: list[str]
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in OP_TYPES:
            raise GraphError(f"unknown op type {self.op!r}")

    def attr(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)


class Graph:
    """A topologically ordered dataflow graph over named tensors."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: list[Node] = []
        self.tensors: dict[str, Tensor] = {}
        self.inputs: list[str] = []
        self.outputs: list[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_tensor(self, tensor: Tensor) -> Tensor:
        if tensor.name in self.tensors:
            raise GraphError(f"duplicate tensor name {tensor.name!r}")
        self.tensors[tensor.name] = tensor
        return tensor

    def add_constant(self, name: str, data: np.ndarray, quant: QuantParams | None = None) -> Tensor:
        data = np.asarray(data)
        dtype: NcoreDType | str
        if data.dtype == np.float32 or data.dtype == np.float64:
            data = data.astype(np.float32)
            dtype = "float32"
        elif data.dtype == np.int32:
            dtype = "int32"  # bias vectors and index tables, stored wide
        else:
            mapping = {
                np.dtype(np.int8): NcoreDType.INT8,
                np.dtype(np.uint8): NcoreDType.UINT8,
                np.dtype(np.int16): NcoreDType.INT16,
            }
            if data.dtype not in mapping:
                raise GraphError(f"unsupported constant dtype {data.dtype}")
            dtype = mapping[data.dtype]
        return self.add_tensor(Tensor(name, TensorType(data.shape, dtype), data, quant))

    def add_input(self, name: str, type: TensorType, quant: QuantParams | None = None) -> Tensor:
        tensor = self.add_tensor(Tensor(name, type, quant=quant))
        self.inputs.append(name)
        return tensor

    def mark_output(self, name: str) -> None:
        if name not in self.tensors:
            raise GraphError(f"unknown tensor {name!r}")
        if name not in self.outputs:
            self.outputs.append(name)

    def add_node(self, node: Node) -> Node:
        for tensor_name in node.inputs:
            if tensor_name not in self.tensors:
                raise GraphError(f"node {node.name!r} reads unknown tensor {tensor_name!r}")
        for tensor_name in node.outputs:
            if tensor_name not in self.tensors:
                raise GraphError(f"node {node.name!r} writes unknown tensor {tensor_name!r}")
        if any(existing.name == node.name for existing in self.nodes):
            raise GraphError(f"duplicate node name {node.name!r}")
        self.nodes.append(node)
        return node

    def copy(self, name: str | None = None) -> "Graph":
        """A structurally independent copy of this graph.

        Node and tensor objects are duplicated (mutable wiring lists and
        attribute dicts included) so optimization passes on the copy can
        never touch the original.  Constant arrays are shared read-only —
        no pass rewrites weight data in place; passes that fold constants
        install *new* arrays on the copy.
        """
        clone = Graph(name if name is not None else self.name)
        for tensor_name, tensor in self.tensors.items():
            clone.tensors[tensor_name] = Tensor(
                tensor.name, tensor.type, tensor.data, tensor.quant
            )
        clone.inputs = list(self.inputs)
        clone.outputs = list(self.outputs)
        clone.nodes = [
            Node(node.name, node.op, list(node.inputs), list(node.outputs),
                 dict(node.attrs))
            for node in self.nodes
        ]
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def tensor(self, name: str) -> Tensor:
        try:
            return self.tensors[name]
        except KeyError:
            raise GraphError(f"unknown tensor {name!r}") from None

    def producer(self, tensor_name: str) -> Node | None:
        for node in self.nodes:
            if tensor_name in node.outputs:
                return node
        return None

    def consumers(self, tensor_name: str) -> list[Node]:
        return [node for node in self.nodes if tensor_name in node.inputs]

    def find_nodes(self, op: str) -> list[Node]:
        return [node for node in self.nodes if node.op == op]

    def node(self, name: str) -> Node:
        for node in self.nodes:
            if node.name == name:
                return node
        raise GraphError(f"unknown node {name!r}")

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    # ------------------------------------------------------------------
    # Mutation (used by optimization passes)
    # ------------------------------------------------------------------

    def remove_node(self, node: Node) -> None:
        self.nodes.remove(node)

    def rewire_input(self, node: Node, old: str, new: str) -> None:
        node.inputs = [new if name == old else name for name in node.inputs]

    def replace_uses(self, old: str, new: str) -> None:
        """Redirect every consumer of ``old`` (and graph outputs) to ``new``."""
        for node in self.nodes:
            self.rewire_input(node, old, new)
        self.outputs = [new if name == old else name for name in self.outputs]

    def prune_dead_tensors(self) -> int:
        """Drop tensors no node touches and no interface references."""
        live = set(self.inputs) | set(self.outputs)
        for node in self.nodes:
            live.update(node.inputs)
            live.update(node.outputs)
        dead = [name for name in self.tensors if name not in live]
        for name in dead:
            del self.tensors[name]
        return len(dead)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises GraphError on violation."""
        seen_names: set[str] = set()
        for node in self.nodes:
            if node.name in seen_names:
                raise GraphError(f"duplicate node name {node.name!r}")
            seen_names.add(node.name)
            for name in (*node.inputs, *node.outputs):
                if name not in self.tensors:
                    raise GraphError(
                        f"node {node.name!r} references unknown tensor {name!r}"
                    )
        produced: set[str] = set(self.inputs)
        produced.update(name for name, t in self.tensors.items() if t.is_constant)
        for node in self.nodes:
            for name in node.inputs:
                if name not in produced:
                    raise GraphError(
                        f"node {node.name!r} reads {name!r} before it is produced "
                        "(graph is not topologically ordered)"
                    )
            for name in node.outputs:
                if name in produced and name not in self.inputs:
                    raise GraphError(f"tensor {name!r} produced more than once")
                produced.add(name)
        for name in self.outputs:
            if name not in produced:
                raise GraphError(f"graph output {name!r} is never produced")

    # ------------------------------------------------------------------
    # Statistics (Table V: MACs, weights)
    # ------------------------------------------------------------------

    def count_macs(self) -> int:
        """Multiply-accumulate operations for one inference (batch as built)."""
        total = 0
        for node in self.nodes:
            total += _node_macs(self, node)
        return total

    def count_weights(self) -> int:
        """Total trainable parameters (constants feeding compute ops)."""
        counted: set[str] = set()
        total = 0
        for node in self.nodes:
            if node.op not in (
                "conv2d",
                "depthwise_conv2d",
                "fully_connected",
                "lstm_cell",
                "lstm_step",
                "embedding",
                "batch_norm",
                "bias_add",
                "attention",
            ):
                continue
            for name in node.inputs:
                tensor = self.tensors[name]
                if tensor.is_constant and name not in counted:
                    counted.add(name)
                    total += tensor.type.num_elements
        return total


def _node_macs(graph: Graph, node: Node) -> int:
    """MACs contributed by one node (0 for non-MAC ops)."""
    if node.op == "conv2d":
        out = graph.tensor(node.outputs[0]).shape  # (n, h, w, k)
        weights = graph.tensor(node.inputs[1]).shape  # (kh, kw, c, k)
        n, h, w, k = out
        kh, kw, c, _ = weights
        return n * h * w * k * kh * kw * c
    if node.op == "depthwise_conv2d":
        out = graph.tensor(node.outputs[0]).shape
        weights = graph.tensor(node.inputs[1]).shape  # (kh, kw, c)
        n, h, w, c = out
        kh, kw = weights[0], weights[1]
        return n * h * w * c * kh * kw
    if node.op == "fully_connected":
        weights = graph.tensor(node.inputs[1]).shape  # (in, out)
        batch = int(np.prod(graph.tensor(node.inputs[0]).shape[:-1]))
        return batch * weights[0] * weights[1]
    if node.op == "lstm_cell":
        # 4 gates x (input + recurrent) matmuls per step; weights input is
        # the stacked (in + hidden, 4 * hidden) matrix.
        weights = graph.tensor(node.inputs[1]).shape
        batch = graph.tensor(node.inputs[0]).shape[0]
        return batch * weights[0] * weights[1]
    if node.op == "lstm_step":
        # Same hardware work as lstm_cell with split weights: one step of
        # input projection plus the recurrent matmul, batch x (in + hidden)
        # x 4*hidden.  (The *reference* recomputes the whole-sequence input
        # projection per node; the modelled Ncore does not.)
        wx = graph.tensor(node.inputs[1]).shape  # (in, 4 * hidden)
        wh = graph.tensor(node.inputs[2]).shape  # (hidden, 4 * hidden)
        batch = graph.tensor(node.outputs[0]).shape[0]
        return batch * (wx[0] + wh[0]) * wx[1]
    if node.op == "attention":
        # score + context matmuls against the encoder states.
        keys = graph.tensor(node.inputs[1]).shape  # (n, time, hidden)
        n, time, hidden = keys
        return 2 * n * time * hidden
    return 0
