"""Float32 reference semantics for every GIR operator.

These numpy implementations serve three roles:

1. the golden model quantized kernels and Ncore programs are checked
   against in tests;
2. the execution engine for the non-delegated (x86) subgraphs when a model
   runs in float;
3. shape checking for graph construction and optimization passes.

Activations are NHWC; convolution weights HWIO; depthwise weights HWC.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import quantize as quantize_array
from repro.dtypes import dequantize as dequantize_array
from repro.graph.gir import Graph, GraphError, Node

Padding = tuple[tuple[int, int], tuple[int, int]]


def _pad_nhwc(x: np.ndarray, padding: Padding, value: float = 0.0) -> np.ndarray:
    (top, bottom), (left, right) = padding
    return np.pad(
        x, ((0, 0), (top, bottom), (left, right), (0, 0)), constant_values=value
    )


def _out_dim(size: int, k: int, stride: int, pad: tuple[int, int]) -> int:
    return (size + pad[0] + pad[1] - k) // stride + 1


def conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    stride: tuple[int, int] = (1, 1),
    padding: Padding = ((0, 0), (0, 0)),
    bias: np.ndarray | None = None,
    activation: str = "none",
) -> np.ndarray:
    """2-D convolution, NHWC x HWIO -> NHWC, via im2col."""
    kh, kw, cin, cout = weights.shape
    if x.shape[3] != cin:
        raise GraphError(f"conv2d channel mismatch: input {x.shape[3]} vs weights {cin}")
    x = _pad_nhwc(x, padding)
    n, h, w, _ = x.shape
    sh, sw = stride
    oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
    # im2col: gather all receptive fields, then one big matmul.
    cols = np.empty((n, oh, ow, kh * kw * cin), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            patch = x[:, i : i + oh * sh : sh, j : j + ow * sw : sw, :]
            cols[..., (i * kw + j) * cin : (i * kw + j + 1) * cin] = patch
    flat_w = weights.reshape(kh * kw * cin, cout)
    out = cols.reshape(-1, kh * kw * cin) @ flat_w
    out = out.reshape(n, oh, ow, cout)
    if bias is not None:
        out = out + bias
    return apply_activation(out, activation)


def depthwise_conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    stride: tuple[int, int] = (1, 1),
    padding: Padding = ((0, 0), (0, 0)),
    bias: np.ndarray | None = None,
    activation: str = "none",
) -> np.ndarray:
    """Depthwise 2-D convolution, NHWC x HWC -> NHWC."""
    kh, kw, c = weights.shape
    if x.shape[3] != c:
        raise GraphError(f"depthwise channel mismatch: {x.shape[3]} vs {c}")
    x = _pad_nhwc(x, padding)
    n, h, w, _ = x.shape
    sh, sw = stride
    oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
    out = np.zeros((n, oh, ow, c), dtype=np.float64)
    for i in range(kh):
        for j in range(kw):
            patch = x[:, i : i + oh * sh : sh, j : j + ow * sw : sw, :]
            out += patch.astype(np.float64) * weights[i, j]
    out = out.astype(np.float32)
    if bias is not None:
        out = out + bias
    return apply_activation(out, activation)


def fully_connected(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    activation: str = "none",
) -> np.ndarray:
    """Dense layer: (..., in) x (in, out) -> (..., out)."""
    out = x @ weights
    if bias is not None:
        out = out + bias
    return apply_activation(out, activation)


def batch_norm(
    x: np.ndarray,
    mean: np.ndarray,
    variance: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    epsilon: float = 1e-3,
) -> np.ndarray:
    return (x - mean) / np.sqrt(variance + epsilon) * gamma + beta


def apply_activation(x: np.ndarray, activation: str) -> np.ndarray:
    if activation in ("none", None):
        return np.asarray(x, dtype=np.float32)
    if activation == "relu":
        return np.maximum(x, 0.0).astype(np.float32)
    if activation == "relu6":
        return np.clip(x, 0.0, 6.0).astype(np.float32)
    if activation == "tanh":
        return np.tanh(x).astype(np.float32)
    if activation == "sigmoid":
        return (1.0 / (1.0 + np.exp(-np.asarray(x, dtype=np.float64)))).astype(np.float32)
    raise GraphError(f"unknown activation {activation!r}")


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return (e / np.sum(e, axis=axis, keepdims=True)).astype(np.float32)


def max_pool(
    x: np.ndarray,
    ksize: tuple[int, int],
    stride: tuple[int, int],
    padding: Padding = ((0, 0), (0, 0)),
) -> np.ndarray:
    x = _pad_nhwc(x, padding, value=-np.inf)
    n, h, w, c = x.shape
    kh, kw = ksize
    sh, sw = stride
    oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
    out = np.full((n, oh, ow, c), -np.inf, dtype=np.float32)
    for i in range(kh):
        for j in range(kw):
            patch = x[:, i : i + oh * sh : sh, j : j + ow * sw : sw, :]
            out = np.maximum(out, patch)
    return out


def avg_pool(
    x: np.ndarray,
    ksize: tuple[int, int],
    stride: tuple[int, int],
    padding: Padding = ((0, 0), (0, 0)),
) -> np.ndarray:
    x = _pad_nhwc(x, padding)
    n, h, w, c = x.shape
    kh, kw = ksize
    sh, sw = stride
    oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
    out = np.zeros((n, oh, ow, c), dtype=np.float64)
    for i in range(kh):
        for j in range(kw):
            out += x[:, i : i + oh * sh : sh, j : j + ow * sw : sw, :]
    return (out / (kh * kw)).astype(np.float32)


def lstm_cell(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray,
    h_prev: np.ndarray,
    c_prev: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One LSTM step.  Weights are ((in + hidden), 4 * hidden), gate order
    i, f, g, o (input, forget, cell, output)."""
    gates = np.concatenate([x, h_prev], axis=-1) @ weights + bias
    return _lstm_gates(gates, c_prev)


def _lstm_gates(gates: np.ndarray, c_prev: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Shared gate nonlinearity for lstm_cell / lstm_step (i, f, g, o order).

    The sigmoid runs once over the whole gate row (the g chunk's share is
    discarded) instead of per gate slice — elementwise, so the kept lanes
    are the same bits while the call count per step drops by ~3x.
    """
    hidden = gates.shape[-1] // 4
    sig = (1.0 / (1.0 + np.exp(-np.asarray(gates, dtype=np.float64)))).astype(
        np.float32
    )
    i = sig[..., :hidden]
    f = sig[..., hidden : 2 * hidden]
    o = sig[..., 3 * hidden :]
    g = np.tanh(gates[..., 2 * hidden : 3 * hidden]).astype(np.float32)
    c = f * c_prev + i * g
    h = o * np.tanh(c).astype(np.float32)
    return np.asarray(h, dtype=np.float32), np.asarray(c, dtype=np.float32)


def lstm_step_project(x_seq: np.ndarray, wx: np.ndarray) -> np.ndarray:
    """Whole-sequence input projection for ``lstm_step``: every step's gate
    contribution from the (shared) input sequence, ``x_seq @ wx``.

    Part of the op's *reference semantics*: each ``lstm_step`` node projects
    the full sequence and uses only its own row.  A fused kernel (the
    ``seqfuse`` codegen variant) may compute this once per chain and slice —
    the arrays and the matmul call are identical, so the result is
    bit-identical to the per-node reference.
    """
    width = x_seq.shape[-1]
    flat = np.asarray(x_seq).reshape(-1, width) @ wx
    return flat.reshape(x_seq.shape[:-1] + (wx.shape[-1],))


def lstm_step_combine(
    xp_row: np.ndarray,
    wh: np.ndarray,
    bias: np.ndarray,
    h_prev: np.ndarray,
    c_prev: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Recurrent half of ``lstm_step``: add the recurrent matmul and bias to
    one projected row, then apply the lstm_cell gate math."""
    gates = xp_row + h_prev @ wh + bias
    return _lstm_gates(gates, c_prev)


def lstm_step(
    x_seq: np.ndarray,
    wx: np.ndarray,
    wh: np.ndarray,
    bias: np.ndarray,
    h_prev: np.ndarray,
    c_prev: np.ndarray,
    t: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sequence-projected LSTM step ``t``.

    Unlike ``lstm_cell`` (stacked ``(in + hidden, 4 * hidden)`` weights over
    ``concat([x, h])``), the input and recurrent weights are split: ``wx``
    is ``(in, 4 * hidden)`` applied to the whole input sequence ``x_seq``
    (``(time, in)`` or ``(batch, time, in)``), ``wh`` is
    ``(hidden, 4 * hidden)`` applied to ``h_prev``.  The reference projects
    the entire sequence on every step — the honest unfused formulation, like
    recomputing attention scores per query — and uses row ``t``.
    """
    xp = lstm_step_project(x_seq, wx)
    return lstm_step_combine(xp[..., t, :], wh, bias, h_prev, c_prev)


def attention(query: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Dot-product attention: context over encoder states.

    query (n, hidden); keys (n, time, hidden) serve as both keys and
    values, as in GNMT's attention over encoder outputs.
    """
    scores = np.einsum("nh,nth->nt", query, keys) / np.sqrt(keys.shape[-1])
    weights = softmax(scores, axis=-1)
    return np.einsum("nt,nth->nh", weights, keys).astype(np.float32)


def nms(
    boxes: np.ndarray,
    scores: np.ndarray,
    iou_threshold: float = 0.6,
    score_threshold: float = 0.3,
    max_detections: int = 10,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class non-maximum suppression (the SSD postprocess).

    boxes (anchors, 4) as (y1, x1, y2, x2); scores (anchors, classes).
    Returns (selected_boxes, selected_scores, selected_classes), padded to
    ``max_detections``.  This operator runs on x86 in the paper's system —
    "TensorFlow-Lite's implementation of the NMS operation does not support
    batching" (section VI-C).
    """
    num_classes = scores.shape[1]
    picked: list[tuple[float, int, int]] = []  # (score, anchor, class)
    for cls in range(num_classes):
        cls_scores = scores[:, cls]
        candidates = np.argsort(-cls_scores)
        candidates = [a for a in candidates if cls_scores[a] >= score_threshold]
        kept: list[int] = []
        for anchor in candidates:
            if all(_iou(boxes[anchor], boxes[k]) <= iou_threshold for k in kept):
                kept.append(anchor)
        picked.extend((float(cls_scores[a]), a, cls) for a in kept)
    picked.sort(reverse=True)
    picked = picked[:max_detections]
    out_boxes = np.zeros((max_detections, 4), dtype=np.float32)
    out_scores = np.zeros(max_detections, dtype=np.float32)
    out_classes = np.full(max_detections, -1, dtype=np.int32)
    for i, (score, anchor, cls) in enumerate(picked):
        out_boxes[i] = boxes[anchor]
        out_scores[i] = score
        out_classes[i] = cls
    return out_boxes, out_scores, out_classes


def _iou(a: np.ndarray, b: np.ndarray) -> float:
    y1, x1 = max(a[0], b[0]), max(a[1], b[1])
    y2, x2 = min(a[2], b[2]), min(a[3], b[3])
    inter = max(0.0, y2 - y1) * max(0.0, x2 - x1)
    area_a = (a[2] - a[0]) * (a[3] - a[1])
    area_b = (b[2] - b[0]) * (b[3] - b[1])
    union = area_a + area_b - inter
    return float(inter / union) if union > 0 else 0.0


# ---------------------------------------------------------------------------
# Graph execution
# ---------------------------------------------------------------------------


def _optional_input(graph: Graph, node: Node, index: int) -> np.ndarray | None:
    if len(node.inputs) > index:
        return graph.tensor(node.inputs[index]).data
    return None


def execute_float(graph: Graph, feeds: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Execute a graph in float32, returning its output tensors."""
    values: dict[str, np.ndarray] = {}
    for name, tensor in graph.tensors.items():
        if tensor.is_constant:
            values[name] = tensor.data
    for name in graph.inputs:
        if name not in feeds:
            raise GraphError(f"missing feed for graph input {name!r}")
        values[name] = np.asarray(feeds[name])
    for node in graph.nodes:
        ins = [values[name] for name in node.inputs]
        outs = execute_node(graph, node, ins)
        for name, value in zip(node.outputs, outs, strict=False):
            values[name] = value
    return {name: values[name] for name in graph.outputs}


def execute_node(graph: Graph, node: Node, ins: list[np.ndarray]) -> list[np.ndarray]:
    """Execute a single node given its input arrays (reference semantics)."""
    op = node.op
    attrs = node.attrs
    act = attrs.get("activation", "none")
    if op == "conv2d":
        bias = ins[2] if len(ins) > 2 else None
        return [
            conv2d(
                ins[0], ins[1],
                stride=attrs.get("stride", (1, 1)),
                padding=attrs.get("padding", ((0, 0), (0, 0))),
                bias=bias, activation=act,
            )
        ]
    if op == "depthwise_conv2d":
        bias = ins[2] if len(ins) > 2 else None
        return [
            depthwise_conv2d(
                ins[0], ins[1],
                stride=attrs.get("stride", (1, 1)),
                padding=attrs.get("padding", ((0, 0), (0, 0))),
                bias=bias, activation=act,
            )
        ]
    if op == "fully_connected":
        bias = ins[2] if len(ins) > 2 else None
        return [fully_connected(ins[0], ins[1], bias, act)]
    if op == "bias_add":
        return [apply_activation(ins[0] + ins[1], act)]
    if op == "batch_norm":
        return [
            batch_norm(ins[0], ins[1], ins[2], ins[3], ins[4], attrs.get("epsilon", 1e-3))
        ]
    if op in ("relu", "relu6", "tanh", "sigmoid"):
        return [apply_activation(ins[0], op)]
    if op == "softmax":
        return [softmax(ins[0], attrs.get("axis", -1))]
    if op == "add":
        return [apply_activation(ins[0] + ins[1], act)]
    if op == "mul":
        return [(ins[0] * ins[1]).astype(np.float32)]
    if op == "concat":
        return [np.concatenate(ins, axis=attrs.get("axis", -1))]
    if op == "pad":
        return [_pad_nhwc(ins[0], attrs["padding"], attrs.get("value", 0.0))]
    if op == "max_pool":
        return [
            max_pool(ins[0], attrs["ksize"], attrs["stride"], attrs.get("padding", ((0, 0), (0, 0))))
        ]
    if op == "avg_pool":
        return [
            avg_pool(ins[0], attrs["ksize"], attrs["stride"], attrs.get("padding", ((0, 0), (0, 0))))
        ]
    if op == "mean":
        return [np.mean(ins[0], axis=attrs.get("axis", (1, 2))).astype(np.float32)]
    if op == "reshape":
        return [ins[0].reshape(attrs["shape"])]
    if op == "slice":
        axis, begin, size = attrs["axis"], attrs["begin"], attrs["size"]
        index = [slice(None)] * ins[0].ndim
        index[axis] = slice(begin, begin + size)
        out = ins[0][tuple(index)]
        if attrs.get("squeeze", False):
            out = np.squeeze(out, axis=axis)
        return [out]
    if op == "quantize":
        qp = graph.tensor(node.outputs[0]).quant
        if qp is None:
            raise GraphError(f"quantize node {node.name!r} output lacks quant params")
        return [quantize_array(ins[0], qp)]
    if op == "dequantize":
        qp = graph.tensor(node.inputs[0]).quant
        if qp is None:
            raise GraphError(f"dequantize node {node.name!r} input lacks quant params")
        return [dequantize_array(ins[0], qp)]
    if op == "embedding":
        table, ids = ins[0], ins[1]
        return [table[ids.astype(np.int64)]]
    if op == "lstm_cell":
        h, c = lstm_cell(ins[0], ins[1], ins[2], ins[3], ins[4])
        return [h, c]
    if op == "lstm_step":
        h, c = lstm_step(
            ins[0], ins[1], ins[2], ins[3], ins[4], ins[5], int(attrs["t"])
        )
        return [h, c]
    if op == "attention":
        return [attention(ins[0], ins[1])]
    if op == "nms":
        boxes, scores, classes = nms(
            ins[0], ins[1],
            iou_threshold=attrs.get("iou_threshold", 0.6),
            score_threshold=attrs.get("score_threshold", 0.3),
            max_detections=attrs.get("max_detections", 10),
        )
        return [boxes, scores, classes]
    if op == "identity":
        return [ins[0]]
    raise GraphError(f"no reference implementation for op {op!r}")


def infer_shapes(graph: Graph) -> None:
    """Validate that declared tensor shapes are consistent with op semantics.

    Runs symbolic checks for the shape-bearing ops; raises GraphError on
    the first inconsistency.  (Builders declare output shapes explicitly;
    this pass catches declaration bugs.)
    """
    for node in graph.nodes:
        if node.op in ("conv2d", "depthwise_conv2d"):
            x = graph.tensor(node.inputs[0]).shape
            w = graph.tensor(node.inputs[1]).shape
            out = graph.tensor(node.outputs[0]).shape
            stride = node.attr("stride", (1, 1))
            padding = node.attr("padding", ((0, 0), (0, 0)))
            kh, kw = w[0], w[1]
            expected_h = _out_dim(x[1], kh, stride[0], padding[0])
            expected_w = _out_dim(x[2], kw, stride[1], padding[1])
            cout = w[3] if node.op == "conv2d" else w[2]
            expected = (x[0], expected_h, expected_w, cout)
            if out != expected:
                raise GraphError(
                    f"{node.op} {node.name!r}: declared output {out}, expected {expected}"
                )
        elif node.op == "fully_connected":
            x = graph.tensor(node.inputs[0]).shape
            w = graph.tensor(node.inputs[1]).shape
            out = graph.tensor(node.outputs[0]).shape
            if x[-1] != w[0] or out != x[:-1] + (w[1],):
                raise GraphError(f"fully_connected {node.name!r} shape mismatch")
        elif node.op in ("max_pool", "avg_pool"):
            x = graph.tensor(node.inputs[0]).shape
            out = graph.tensor(node.outputs[0]).shape
            kh, kw = node.attrs["ksize"]
            stride = node.attrs["stride"]
            padding = node.attr("padding", ((0, 0), (0, 0)))
            expected = (
                x[0],
                _out_dim(x[1], kh, stride[0], padding[0]),
                _out_dim(x[2], kw, stride[1], padding[1]),
                x[3],
            )
            if out != expected:
                raise GraphError(
                    f"{node.op} {node.name!r}: declared output {out}, expected {expected}"
                )
        elif node.op == "pad":
            x = graph.tensor(node.inputs[0]).shape
            out = graph.tensor(node.outputs[0]).shape
            (top, bottom), (left, right) = node.attrs["padding"]
            expected = (x[0], x[1] + top + bottom, x[2] + left + right, x[3])
            if out != expected:
                raise GraphError(f"pad {node.name!r} shape mismatch")
