"""Fusion passes: explicit pads, bias additions and activations.

Section V-B: "A common, subsequent optimization pass fuses the element-wise
bias-addition and activation functions into operations such as convolution"
and "a graph-level optimization pass fuses these explicit pad operations
into an adjacent convolution" (the ResNet-50-V1.5 MLPerf reference graph
has four explicit pads).
"""

from __future__ import annotations

from repro.graph.gir import Graph

_CONV_LIKE = ("conv2d", "depthwise_conv2d")
_BIAS_TARGETS = ("conv2d", "depthwise_conv2d", "fully_connected")
_ACT_TARGETS = ("conv2d", "depthwise_conv2d", "fully_connected", "add")
_FUSABLE_ACTS = ("relu", "relu6", "tanh", "sigmoid")


def fuse_pad(graph: Graph) -> bool:
    """Fold zero-valued explicit pad ops into the following convolution."""
    changed = False
    for pad in list(graph.find_nodes("pad")):
        if pad.attr("value", 0.0) != 0.0:
            continue
        consumers = graph.consumers(pad.outputs[0])
        if len(consumers) != 1 or consumers[0].op not in _CONV_LIKE:
            continue
        if pad.outputs[0] in graph.outputs:
            continue
        conv = consumers[0]
        (pt, pb), (pl, pr) = pad.attrs["padding"]
        (ct, cb), (cl, cr) = conv.attr("padding", ((0, 0), (0, 0)))
        conv.attrs["padding"] = ((pt + ct, pb + cb), (pl + cl, pr + cr))
        graph.rewire_input(conv, pad.outputs[0], pad.inputs[0])
        graph.remove_node(pad)
        changed = True
    return changed


def fuse_bias_add(graph: Graph) -> bool:
    """Attach constant bias_add vectors to the producing conv/dense op."""
    changed = False
    for bias_add in list(graph.find_nodes("bias_add")):
        producer = graph.producer(bias_add.inputs[0])
        if producer is None or producer.op not in _BIAS_TARGETS:
            continue
        if len(producer.inputs) > 2:
            continue  # already carries a bias
        if len(graph.consumers(producer.outputs[0])) != 1:
            continue
        if not graph.tensor(bias_add.inputs[1]).is_constant:
            continue
        producer.inputs.append(bias_add.inputs[1])
        # Preserve any activation the bias_add itself carried.
        act = bias_add.attr("activation", "none")
        if act != "none":
            producer.attrs["activation"] = act
        graph.replace_uses(bias_add.outputs[0], producer.outputs[0])
        graph.remove_node(bias_add)
        changed = True
    return changed


def fuse_activations(graph: Graph) -> bool:
    """Fold standalone activation nodes into the producing op's attribute."""
    changed = False
    for node in list(graph.nodes):
        if node.op not in _FUSABLE_ACTS:
            continue
        producer = graph.producer(node.inputs[0])
        if producer is None or producer.op not in _ACT_TARGETS:
            continue
        if producer.attr("activation", "none") != "none":
            continue
        if len(graph.consumers(producer.outputs[0])) != 1:
            continue
        producer.attrs["activation"] = node.op
        graph.replace_uses(node.outputs[0], producer.outputs[0])
        graph.remove_node(node)
        changed = True
    return changed
