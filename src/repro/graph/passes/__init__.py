"""Graph-level optimization passes (section V-B).

The paper's examples, all implemented here:

- eliminate batch-normalization by folding its constants into adjacent
  convolution filters and bias vectors (:mod:`folding`);
- fuse element-wise bias-addition and activation functions into operations
  such as convolution (:mod:`fusion`);
- fuse explicit pad operations into an adjacent convolution — the
  ResNet-50-V1.5 MLPerf reference graph has four of these (:mod:`fusion`);
- constant folding and dead-code elimination (:mod:`cleanup`).
"""

from __future__ import annotations

from typing import Callable

from repro.graph.gir import Graph
from repro.graph.passes.cleanup import (
    common_subexpression_elimination,
    constant_fold,
    dead_code_elimination,
)
from repro.graph.passes.folding import fold_batch_norm
from repro.graph.passes.fusion import fuse_bias_add, fuse_activations, fuse_pad

GraphPass = Callable[[Graph], bool]


class PassManager:
    """Runs a pipeline of passes to a fixed point.

    Each pass returns True when it changed the graph; the manager repeats
    the pipeline until a full sweep makes no changes (bounded, since every
    pass strictly shrinks or annotates the graph).
    """

    def __init__(self, passes: list[GraphPass], max_sweeps: int = 10) -> None:
        self.passes = list(passes)
        self.max_sweeps = max_sweeps

    def run(self, graph: Graph) -> int:
        """Optimize in place; returns the number of changing sweeps."""
        sweeps = 0
        for _ in range(self.max_sweeps):
            changed = False
            for graph_pass in self.passes:
                if graph_pass(graph):
                    changed = True
                    graph.validate()
            if not changed:
                break
            sweeps += 1
        graph.prune_dead_tensors()
        return sweeps


def default_pipeline() -> PassManager:
    """The standard GCL optimization pipeline."""
    return PassManager(
        [
            fuse_pad,
            fold_batch_norm,
            fuse_bias_add,
            fuse_activations,
            constant_fold,
            common_subexpression_elimination,
            dead_code_elimination,
        ]
    )


__all__ = [
    "PassManager",
    "common_subexpression_elimination",
    "constant_fold",
    "dead_code_elimination",
    "default_pipeline",
    "fold_batch_norm",
    "fuse_activations",
    "fuse_bias_add",
    "fuse_pad",
]
