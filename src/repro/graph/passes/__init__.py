"""Graph-level optimization passes (section V-B).

The paper's examples, all implemented here:

- eliminate batch-normalization by folding its constants into adjacent
  convolution filters and bias vectors (:mod:`folding`);
- fuse element-wise bias-addition and activation functions into operations
  such as convolution (:mod:`fusion`);
- fuse explicit pad operations into an adjacent convolution — the
  ResNet-50-V1.5 MLPerf reference graph has four of these (:mod:`fusion`);
- constant folding and dead-code elimination (:mod:`cleanup`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.graph.gir import Graph
from repro.graph.passes.cleanup import (
    common_subexpression_elimination,
    constant_fold,
    dead_code_elimination,
)
from repro.graph.passes.folding import fold_batch_norm
from repro.graph.passes.fusion import fuse_bias_add, fuse_activations, fuse_pad

GraphPass = Callable[[Graph], bool]


@dataclass
class PassRunStats:
    """What one :meth:`PassManager.run` call did to the graph.

    ``pass_changes`` counts, per pass, the sweeps in which that pass
    reported a change; ``pass_nodes_removed`` attributes node-count
    shrinkage to the pass that caused it (folding/fusion/DCE work).
    """

    sweeps: int = 0
    reached_fixed_point: bool = True
    nodes_before: int = 0
    nodes_after: int = 0
    dead_tensors_pruned: int = 0
    pass_changes: dict[str, int] = field(default_factory=dict)
    pass_nodes_removed: dict[str, int] = field(default_factory=dict)


class PassManager:
    """Runs a pipeline of passes to a fixed point.

    Each pass returns True when it changed the graph; the manager repeats
    the pipeline until a full sweep makes no changes (bounded, since every
    pass strictly shrinks or annotates the graph).  Every run records a
    :class:`PassRunStats` on ``last_stats``; exhausting ``max_sweeps``
    without reaching a fixed point is reported through ``repro.obs`` (an
    instant marker plus a counter) instead of stopping silently.
    """

    def __init__(self, passes: list[GraphPass], max_sweeps: int = 10) -> None:
        self.passes = list(passes)
        self.max_sweeps = max_sweeps
        self.last_stats: PassRunStats | None = None

    def run(self, graph: Graph) -> int:
        """Optimize in place; returns the number of changing sweeps."""
        stats = PassRunStats(nodes_before=len(graph.nodes))
        stats.pass_changes = {p.__name__: 0 for p in self.passes}
        stats.pass_nodes_removed = {p.__name__: 0 for p in self.passes}
        sweeps = 0
        fixed_point = False
        for _ in range(self.max_sweeps):
            changed = False
            for graph_pass in self.passes:
                nodes_before_pass = len(graph.nodes)
                if graph_pass(graph):
                    changed = True
                    graph.validate()
                    name = graph_pass.__name__
                    stats.pass_changes[name] += 1
                    stats.pass_nodes_removed[name] += (
                        nodes_before_pass - len(graph.nodes)
                    )
            if not changed:
                fixed_point = True
                break
            sweeps += 1
        stats.sweeps = sweeps
        stats.reached_fixed_point = fixed_point
        stats.nodes_after = len(graph.nodes)
        stats.dead_tensors_pruned = graph.prune_dead_tensors()
        self.last_stats = stats
        if not fixed_point:
            self._warn_sweeps_exhausted(graph, stats)
        return sweeps

    def _warn_sweeps_exhausted(self, graph: Graph, stats: PassRunStats) -> None:
        """Surface a non-converged pipeline through ``repro.obs``."""
        from repro.obs.metrics import get_metrics
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "passes.max_sweeps_exhausted", track="compiler",
                graph=graph.name, max_sweeps=self.max_sweeps,
                still_changing={
                    name: count for name, count in stats.pass_changes.items() if count
                },
            )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("compiler.pass_sweeps_exhausted").inc()


def default_pipeline() -> PassManager:
    """The standard GCL optimization pipeline."""
    return PassManager(
        [
            fuse_pad,
            fold_batch_norm,
            fuse_bias_add,
            fuse_activations,
            constant_fold,
            common_subexpression_elimination,
            dead_code_elimination,
        ]
    )


__all__ = [
    "PassManager",
    "PassRunStats",
    "common_subexpression_elimination",
    "constant_fold",
    "dead_code_elimination",
    "default_pipeline",
    "fold_batch_norm",
    "fuse_activations",
    "fuse_bias_add",
    "fuse_pad",
]
