"""Batch-normalization folding (section V-B).

"An example optimization pass is to eliminate batch-normalization
operations by folding the batch-normalization constants into adjacent
bias-addition operations and convolution filters."
"""

from __future__ import annotations

import numpy as np

from repro.graph.gir import Graph, Node

_FOLDABLE_PRODUCERS = ("conv2d", "depthwise_conv2d", "fully_connected")


def fold_batch_norm(graph: Graph) -> bool:
    """Fold every batch_norm whose input is produced by a conv/dense op."""
    changed = False
    for bn in list(graph.find_nodes("batch_norm")):
        producer = graph.producer(bn.inputs[0])
        if producer is None or producer.op not in _FOLDABLE_PRODUCERS:
            continue
        if len(graph.consumers(producer.outputs[0])) != 1:
            continue  # conv output used elsewhere: folding would change it
        mean = graph.tensor(bn.inputs[1]).data
        variance = graph.tensor(bn.inputs[2]).data
        gamma = graph.tensor(bn.inputs[3]).data
        beta = graph.tensor(bn.inputs[4]).data
        if any(v is None for v in (mean, variance, gamma, beta)):
            continue
        epsilon = bn.attr("epsilon", 1e-3)
        scale = gamma / np.sqrt(variance + epsilon)
        _scale_weights(graph, producer, scale)
        _fold_bias(graph, producer, scale, beta - mean * scale)
        graph.replace_uses(bn.outputs[0], producer.outputs[0])
        graph.remove_node(bn)
        changed = True
    return changed


def _scale_weights(graph: Graph, node: Node, scale: np.ndarray) -> None:
    weights = graph.tensor(node.inputs[1])
    # conv2d HWIO and fully_connected (in, out) scale the last axis;
    # depthwise HWC also scales the last (channel) axis.
    weights.data = (weights.data * scale).astype(np.float32)


def _fold_bias(graph: Graph, node: Node, scale: np.ndarray, shift: np.ndarray) -> None:
    if len(node.inputs) > 2:
        bias = graph.tensor(node.inputs[2])
        bias.data = (bias.data * scale + shift).astype(np.float32)
    else:
        name = f"{node.name}_folded_bias"
        graph.add_constant(name, shift.astype(np.float32))
        node.inputs.append(name)
