"""Cleanup passes: constant folding and dead-code elimination."""

from __future__ import annotations

from repro.graph.gir import Graph
from repro.graph.reference import execute_node

# Ops whose results are worth folding at compile time when all inputs are
# constant.  Multi-output and data-dependent ops are excluded.
_FOLDABLE = frozenset(
    {
        "conv2d",
        "depthwise_conv2d",
        "fully_connected",
        "bias_add",
        "batch_norm",
        "relu",
        "relu6",
        "tanh",
        "sigmoid",
        "softmax",
        "add",
        "mul",
        "concat",
        "pad",
        "reshape",
        "mean",
        "identity",
    }
)


def constant_fold(graph: Graph) -> bool:
    """Evaluate nodes whose inputs are all constants."""
    changed = False
    for node in list(graph.nodes):
        if node.op not in _FOLDABLE or len(node.outputs) != 1:
            continue
        tensors = [graph.tensor(name) for name in node.inputs]
        if not tensors or not all(t.is_constant for t in tensors):
            continue
        (result,) = execute_node(graph, node, [t.data for t in tensors])
        graph.tensor(node.outputs[0]).data = result
        graph.remove_node(node)
        changed = True
    return changed


def dead_code_elimination(graph: Graph) -> bool:
    """Remove nodes whose outputs reach neither a consumer nor an output."""
    changed = False
    # Sweep in reverse topological order so chains die in one pass.
    for node in reversed(list(graph.nodes)):
        if any(name in graph.outputs for name in node.outputs):
            continue
        if any(graph.consumers(name) for name in node.outputs):
            continue
        graph.remove_node(node)
        changed = True
    return changed


def common_subexpression_elimination(graph: Graph) -> bool:
    """Merge nodes that compute the identical value.

    Two nodes are equivalent when they run the same op over the same input
    tensors with the same attributes; the later node's outputs are rewired
    to the earlier node's.  (Multi-output and stateful ops are skipped.)
    """
    changed = False
    seen: dict[tuple, str] = {}
    for node in list(graph.nodes):
        if len(node.outputs) != 1 or node.op in ("quantize", "dequantize"):
            continue
        key = (node.op, tuple(node.inputs), _freeze(node.attrs))
        if key in seen:
            graph.replace_uses(node.outputs[0], seen[key])
            graph.remove_node(node)
            changed = True
        else:
            seen[key] = node.outputs[0]
    return changed


def _freeze(value):
    """Hashable view of an attrs structure."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value
