"""Delegate-style graph partitioning (Fig. 9).

TensorFlow-Lite's Delegate interface "splits a network's graph into
subgraphs, assigning execution of each subgraph to a specific target" —
compatible portions to Ncore, the rest (preprocessing, NMS, framework-only
ops) to the x86 cores, with TensorFlow handling the callbacks between
them.  This module reproduces that split over the GIR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.gir import Graph, Node

# Ops the Ncore kernel library can lower.  Everything else falls back to
# x86 — notably NMS, which TensorFlow-Lite ran on the CPU in the paper's
# SSD-MobileNet submission (section VI-C), reshapes (pure layout, handled
# at subgraph edges), and softmax.
NCORE_OPS = frozenset(
    {
        "conv2d",
        "depthwise_conv2d",
        "fully_connected",
        "add",
        "mul",
        "relu",
        "relu6",
        "tanh",
        "sigmoid",
        "max_pool",
        "avg_pool",
        "mean",
        "concat",
        "quantize",
        "dequantize",
        "lstm_cell",
        "lstm_step",
        "attention",
        "slice",
        "identity",
    }
)

# Ops that join Ncore segments only inside the bf16 float region.  A
# quantized model's reshapes still break segments at subgraph edges (the
# historical Delegate behaviour, and what the int8 codegen was tuned
# against), but in GNMT's bf16 region a reshape is a pure layout no-op
# between LSTM steps and forcing an x86 island around each one shatters
# the float region into per-node fragments.
NCORE_FLOAT_OPS = frozenset({"reshape"})

NCORE_TARGET = "ncore"
X86_TARGET = "x86"


@dataclass
class Segment:
    """A maximal run of same-target nodes, executed as one unit."""

    target: str
    nodes: list[Node] = field(default_factory=list)

    def input_tensors(self, graph: Graph) -> list[str]:
        """Tensors this segment consumes from outside itself (non-const)."""
        internal = {name for node in self.nodes for name in node.outputs}
        seen: list[str] = []
        for node in self.nodes:
            for name in node.inputs:
                tensor = graph.tensor(name)
                if name in internal or tensor.is_constant or name in seen:
                    continue
                seen.append(name)
        return seen

    def output_tensors(self, graph: Graph) -> list[str]:
        """Tensors produced here that are used outside (or graph outputs)."""
        internal_nodes = set(id(node) for node in self.nodes)
        out: list[str] = []
        for node in self.nodes:
            for name in node.outputs:
                consumed_outside = any(
                    id(consumer) not in internal_nodes
                    for consumer in graph.consumers(name)
                )
                if (consumed_outside or name in graph.outputs) and name not in out:
                    out.append(name)
        return out

    def __len__(self) -> int:
        return len(self.nodes)


def node_target(node: Node, graph: Graph | None = None) -> str:
    """Which engine a single node runs on.

    Pass ``graph`` to enable the bf16-region relaxation for
    :data:`NCORE_FLOAT_OPS`; without it the historical op-only rule applies.
    """
    if node.op in NCORE_OPS:
        return NCORE_TARGET
    if graph is not None and node.op in NCORE_FLOAT_OPS and _bf16_region(graph, node):
        return NCORE_TARGET
    return X86_TARGET


def _bf16_region(graph: Graph, node: Node) -> bool:
    """Whether every tensor the node touches is a bf16 float-region value."""
    from repro.dtypes import NcoreDType

    for name in (*node.inputs, *node.outputs):
        tensor = graph.tensor(name)
        if tensor.quant is not None or tensor.type.dtype is not NcoreDType.BF16:
            return False
    return True


def partition(graph: Graph) -> list[Segment]:
    """Split the (topologically ordered) graph into target segments.

    Consecutive nodes with the same target merge into one segment, which
    keeps dependencies intact because node order is preserved.  The result
    matches the Delegate behaviour in Fig. 9: large Ncore subgraphs with
    x86 islands around unsupported ops.
    """
    segments: list[Segment] = []
    for node in graph.nodes:
        target = node_target(node, graph)
        if segments and segments[-1].target == target:
            segments[-1].nodes.append(node)
        else:
            segments.append(Segment(target, [node]))
    return segments


def ncore_coverage(graph: Graph, segments: list[Segment] | None = None) -> float:
    """Fraction of MAC work landing on Ncore (a compile-quality metric)."""
    from repro.graph.gir import _node_macs

    segments = segments if segments is not None else partition(graph)
    total = graph.count_macs()
    if total == 0:
        return 0.0
    ncore = sum(
        _node_macs(graph, node)
        for segment in segments
        if segment.target == NCORE_TARGET
        for node in segment.nodes
    )
    return ncore / total
