"""TensorFlow-style frontend: NHWC / HWIO with "SAME"/"VALID" padding.

The input format is a plain dict (the shape a flatbuffer/protobuf parser
would hand over): ``{"inputs": [...], "outputs": [...], "operators":
[...], "tensors": {...}}`` — close in spirit to a parsed TensorFlow-Lite
model.  TF's "SAME" places the *extra* padding pixel at the bottom/right,
which is one of the subtle cross-framework differences the GCL has to
normalize (section V-B).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.graph.gir import Graph, GraphError, Node, Tensor, TensorType

# Framework op name -> GIR op name.
_OP_MAP = {
    "CONV_2D": "conv2d",
    "DEPTHWISE_CONV_2D": "depthwise_conv2d",
    "FULLY_CONNECTED": "fully_connected",
    "ADD": "add",
    "MUL": "mul",
    "RELU": "relu",
    "RELU6": "relu6",
    "TANH": "tanh",
    "LOGISTIC": "sigmoid",
    "SOFTMAX": "softmax",
    "MAX_POOL_2D": "max_pool",
    "AVERAGE_POOL_2D": "avg_pool",
    "MEAN": "mean",
    "RESHAPE": "reshape",
    "CONCATENATION": "concat",
    "PAD": "pad",
    "BATCH_NORM": "batch_norm",
    "BIAS_ADD": "bias_add",
}

_ACTIVATIONS = {"NONE": "none", "RELU": "relu", "RELU6": "relu6"}


def _same_padding(size: int, k: int, stride: int) -> tuple[int, int]:
    """TF 'SAME': total padding split with the extra pixel after."""
    out = -(-size // stride)
    total = max((out - 1) * stride + k - size, 0)
    return total // 2, total - total // 2


def _resolve_padding(spec: str | list, in_h: int, in_w: int, kh: int, kw: int, stride):
    if spec == "VALID":
        return ((0, 0), (0, 0))
    if spec == "SAME":
        return (_same_padding(in_h, kh, stride[0]), _same_padding(in_w, kw, stride[1]))
    # Explicit [[t, b], [l, r]] padding.
    (t, b), (l, r) = spec
    return ((int(t), int(b)), (int(l), int(r)))


def import_tf_like(model: dict[str, Any], name: str = "tf_import") -> Graph:
    """Import a TF-style model dict into the GIR."""
    graph = Graph(name)
    tensors: dict[str, dict] = model.get("tensors", {})
    for tensor_name, spec in tensors.items():
        shape = tuple(spec["shape"])
        data = spec.get("data")
        if data is not None:
            graph.add_constant(tensor_name, np.asarray(data))
        else:
            graph.add_tensor(Tensor(tensor_name, TensorType(shape, spec.get("dtype", "float32"))))
    for input_name in model.get("inputs", []):
        if input_name not in graph.tensors:
            raise GraphError(f"model input {input_name!r} has no tensor spec")
        graph.inputs.append(input_name)

    for index, op in enumerate(model.get("operators", [])):
        op_code = op["op"]
        if op_code not in _OP_MAP:
            raise GraphError(f"unsupported TF-style op {op_code!r}")
        gir_op = _OP_MAP[op_code]
        attrs: dict[str, Any] = {}
        node_name = op.get("name", f"{gir_op}_{index}")
        inputs = list(op["inputs"])
        if gir_op in ("conv2d", "depthwise_conv2d"):
            stride = tuple(op.get("stride", (1, 1)))
            weights = graph.tensor(inputs[1])
            kh, kw = weights.shape[0], weights.shape[1]
            in_shape = graph.tensor(inputs[0]).shape
            attrs["stride"] = stride
            attrs["padding"] = _resolve_padding(
                op.get("padding", "VALID"), in_shape[1], in_shape[2], kh, kw, stride
            )
            act = _ACTIVATIONS.get(op.get("fused_activation", "NONE"))
            if act is None:
                raise GraphError(f"unknown fused activation in {node_name!r}")
            if act != "none":
                attrs["activation"] = act
        elif gir_op in ("max_pool", "avg_pool"):
            attrs["ksize"] = tuple(op["ksize"])
            attrs["stride"] = tuple(op.get("stride", attrs["ksize"]))
            in_shape = graph.tensor(inputs[0]).shape
            attrs["padding"] = _resolve_padding(
                op.get("padding", "VALID"),
                in_shape[1], in_shape[2], *attrs["ksize"], attrs["stride"],
            )
        elif gir_op == "reshape":
            attrs["shape"] = tuple(op["shape"])
        elif gir_op == "concat":
            attrs["axis"] = op.get("axis", -1)
        elif gir_op == "pad":
            attrs["padding"] = tuple(tuple(p) for p in op["padding"])
        elif gir_op == "mean":
            attrs["axis"] = tuple(op.get("axis", (1, 2)))
        elif gir_op in ("add", "fully_connected"):
            act = _ACTIVATIONS.get(op.get("fused_activation", "NONE"), "none")
            if act != "none":
                attrs["activation"] = act
        graph.add_node(Node(node_name, gir_op, inputs, list(op["outputs"]), attrs))

    for output_name in model.get("outputs", []):
        graph.mark_output(output_name)
    graph.validate()
    return graph
