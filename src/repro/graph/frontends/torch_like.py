"""PyTorch-style frontend: NCHW / OIHW with symmetric integer padding.

PyTorch convolutions take a single symmetric padding integer per axis and
carry weights as OIHW; activations are NCHW.  The frontend normalizes all
of it into the GIR's NHWC/HWIO conventions at import time — shapes are
permuted, weight constants transposed — so the rest of the compiler never
sees framework-specific layouts.  (This is the "subtle differences that go
beyond just the on-disk serialization format" normalization of section
V-B: for even kernels or asymmetric SAME cases, TF and torch disagree on
where padding lands; torch's symmetric convention is preserved exactly.)

Use :func:`nchw_to_nhwc` / :func:`nhwc_to_nchw` to adapt input and output
arrays at the boundary.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.graph.gir import Graph, GraphError, Node, Tensor, TensorType

_OP_MAP = {
    "conv2d": "conv2d",
    "conv2d_depthwise": "depthwise_conv2d",
    "linear": "fully_connected",
    "add": "add",
    "relu": "relu",
    "relu6": "relu6",
    "tanh": "tanh",
    "sigmoid": "sigmoid",
    "softmax": "softmax",
    "max_pool2d": "max_pool",
    "avg_pool2d": "avg_pool",
    "batch_norm": "batch_norm",
    "flatten": "reshape",
    "cat": "concat",
}


def nchw_to_nhwc(array: np.ndarray) -> np.ndarray:
    """Adapt an NCHW activation array for the imported graph."""
    return np.ascontiguousarray(np.transpose(array, (0, 2, 3, 1)))


def nhwc_to_nchw(array: np.ndarray) -> np.ndarray:
    """Adapt a graph output back to the framework's NCHW layout."""
    return np.ascontiguousarray(np.transpose(array, (0, 3, 1, 2)))


def _shape_to_nhwc(shape: tuple[int, ...]) -> tuple[int, ...]:
    if len(shape) == 4:
        n, c, h, w = shape
        return (n, h, w, c)
    return shape


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def import_torch_like(model: dict[str, Any], name: str = "torch_import") -> Graph:
    """Import a torch-style model dict (NCHW / OIHW) into the GIR."""
    graph = Graph(name)
    for tensor_name, spec in model.get("tensors", {}).items():
        data = spec.get("data")
        if data is not None:
            data = np.asarray(data)
            role = spec.get("role", "generic")
            if role == "conv_weight":           # OIHW -> HWIO
                data = np.transpose(data, (2, 3, 1, 0))
            elif role == "depthwise_weight":    # (C,1,kh,kw) -> HWC
                data = np.transpose(data[:, 0], (1, 2, 0))
            elif role == "linear_weight":       # (out, in) -> (in, out)
                data = np.transpose(data, (1, 0))
            graph.add_constant(tensor_name, np.ascontiguousarray(data))
        else:
            shape = _shape_to_nhwc(tuple(spec["shape"]))
            graph.add_tensor(Tensor(tensor_name, TensorType(shape, spec.get("dtype", "float32"))))
    for input_name in model.get("inputs", []):
        graph.inputs.append(input_name)

    for index, op in enumerate(model.get("operators", [])):
        op_code = op["op"]
        if op_code not in _OP_MAP:
            raise GraphError(f"unsupported torch-style op {op_code!r}")
        gir_op = _OP_MAP[op_code]
        node_name = op.get("name", f"{gir_op}_{index}")
        attrs: dict[str, Any] = {}
        if gir_op in ("conv2d", "depthwise_conv2d"):
            attrs["stride"] = _pair(op.get("stride", 1))
            ph, pw = _pair(op.get("padding", 0))
            attrs["padding"] = ((ph, ph), (pw, pw))  # torch pads symmetrically
        elif gir_op in ("max_pool", "avg_pool"):
            attrs["ksize"] = _pair(op["kernel_size"])
            attrs["stride"] = _pair(op.get("stride", op["kernel_size"]))
            ph, pw = _pair(op.get("padding", 0))
            attrs["padding"] = ((ph, ph), (pw, pw))
        elif gir_op == "reshape":
            attrs["shape"] = tuple(op["shape"])
        elif gir_op == "concat":
            # torch dim over NCHW: dim=1 (channels) is NHWC's last axis.
            dim = op.get("dim", 1)
            attrs["axis"] = {0: 0, 1: 3, 2: 1, 3: 2}.get(dim, dim)
        elif gir_op == "batch_norm":
            attrs["epsilon"] = op.get("eps", 1e-5)
        graph.add_node(Node(node_name, gir_op, list(op["inputs"]), list(op["outputs"]), attrs))

    for output_name in model.get("outputs", []):
        graph.mark_output(output_name)
    graph.validate()
    return graph
