"""GCL frontends: importing framework-specific graph representations.

Section V-B: "To support multiple GIRs from different frameworks, the
Ncore Graph Compiler Library (GCL) provides frontends that can import
framework-specific GIRs into Ncore's own GIR", noting the formats differ
in more than serialization — "the definition of padding for some
convolutions leads to different results for TensorFlow vs PyTorch".

Two frontends are provided, modelling the two convention families:

- :mod:`tf_like`    -- NHWC activations, HWIO weights, string padding
  ("SAME" computed TF-style: extra padding goes bottom/right);
- :mod:`torch_like` -- NCHW activations, OIHW weights, symmetric integer
  padding; the frontend transposes layouts on import.

Plus the on-disk serialization of Ncore's own GIR (:mod:`serialization`).
"""

from repro.graph.frontends.serialization import load_graph, save_graph
from repro.graph.frontends.tf_like import import_tf_like
from repro.graph.frontends.torch_like import import_torch_like

__all__ = ["import_tf_like", "import_torch_like", "load_graph", "save_graph"]
