"""On-disk serialization of the GIR: a JSON structure plus an .npz sidecar.

``save_graph`` writes ``<path>.json`` (structure: tensors, nodes, attrs,
quantization parameters) and ``<path>.npz`` (constant arrays);
``load_graph`` reconstructs an identical graph.  The exported pair is what
the paper calls the model "exported from a DL framework" entering the
toolflow (section V-B), in Ncore's own format.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.dtypes import ChannelQuantParams, NcoreDType, QuantParams
from repro.graph.gir import Graph, GraphError, Node, Tensor, TensorType

FORMAT_VERSION = 1


def _dtype_to_json(dtype) -> str:
    return dtype.value if isinstance(dtype, NcoreDType) else dtype


def _dtype_from_json(value: str):
    if value in ("float32", "int32"):
        return value
    return NcoreDType(value)


def _quant_to_json(quant):
    if quant is None:
        return None
    if isinstance(quant, ChannelQuantParams):
        return {
            "per_channel": True,
            "scales": list(quant.scales),
            "zero_points": list(quant.zero_points),
            "axis": quant.axis,
            "dtype": quant.dtype.value,
        }
    return {
        "scale": quant.scale,
        "zero_point": quant.zero_point,
        "dtype": quant.dtype.value,
    }


def _quant_from_json(spec):
    if spec is None:
        return None
    if spec.get("per_channel"):
        return ChannelQuantParams(
            tuple(spec["scales"]),
            tuple(spec["zero_points"]),
            spec["axis"],
            NcoreDType(spec["dtype"]),
        )
    return QuantParams(spec["scale"], spec["zero_point"], NcoreDType(spec["dtype"]))


def _attrs_to_json(attrs: dict) -> dict:
    """Attrs are JSON-ified; tuples round-trip via lists + shape knowledge."""
    out = {}
    for key, value in attrs.items():
        out[key] = (
            [list(v) if isinstance(v, tuple) else v for v in value]
            if isinstance(value, tuple)
            else value
        )
    return out


_TUPLE_ATTRS = {"stride", "ksize", "shape", "axis"}
_NESTED_TUPLE_ATTRS = {"padding"}


def _attrs_from_json(attrs: dict) -> dict:
    out = {}
    for key, value in attrs.items():
        if key in _NESTED_TUPLE_ATTRS and isinstance(value, list):
            out[key] = tuple(tuple(v) for v in value)
        elif key in _TUPLE_ATTRS and isinstance(value, list):
            out[key] = tuple(value)
        else:
            out[key] = value
    return out


def save_graph(graph: Graph, path: str | Path) -> tuple[Path, Path]:
    """Serialize a graph; returns the (json_path, npz_path) pair."""
    path = Path(path)
    json_path = path.with_suffix(".json")
    npz_path = path.with_suffix(".npz")
    constants: dict[str, np.ndarray] = {}
    tensors = {}
    for name, tensor in graph.tensors.items():
        tensors[name] = {
            "shape": list(tensor.shape),
            "dtype": _dtype_to_json(tensor.type.dtype),
            "quant": _quant_to_json(tensor.quant),
            "constant": tensor.is_constant,
        }
        if tensor.is_constant:
            constants[name] = tensor.data
    document = {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "inputs": graph.inputs,
        "outputs": graph.outputs,
        "tensors": tensors,
        "nodes": [
            {
                "name": node.name,
                "op": node.op,
                "inputs": node.inputs,
                "outputs": node.outputs,
                "attrs": _attrs_to_json(node.attrs),
            }
            for node in graph.nodes
        ],
    }
    json_path.write_text(json.dumps(document, indent=1))
    np.savez_compressed(npz_path, **constants)
    return json_path, npz_path


def load_graph(path: str | Path) -> Graph:
    """Reconstruct a graph saved by :func:`save_graph`."""
    path = Path(path)
    json_path = path.with_suffix(".json")
    npz_path = path.with_suffix(".npz")
    document = json.loads(json_path.read_text())
    if document.get("format_version") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported GIR format version {document.get('format_version')!r}"
        )
    constants = np.load(npz_path)
    graph = Graph(document["name"])
    for name, spec in document["tensors"].items():
        dtype = _dtype_from_json(spec["dtype"])
        data = constants[name] if spec["constant"] else None
        graph.add_tensor(
            Tensor(
                name,
                TensorType(tuple(spec["shape"]), dtype),
                data,
                _quant_from_json(spec["quant"]),
            )
        )
    graph.inputs = list(document["inputs"])
    graph.outputs = list(document["outputs"])
    for node_spec in document["nodes"]:
        graph.add_node(
            Node(
                node_spec["name"],
                node_spec["op"],
                list(node_spec["inputs"]),
                list(node_spec["outputs"]),
                _attrs_from_json(node_spec["attrs"]),
            )
        )
    graph.validate()
    return graph
