"""The Ncore Graph Compiler Library (GCL).

Section V-B: the GCL imports framework-specific graph representations into
Ncore's own graph IR, runs generic graph-level optimizations (batch-norm
folding, pad fusion, bias/activation fusion), selects data layouts, plans
scratchpad memory and weight movement, and lowers the result to an Ncore
Loadable via the kernel library.
"""

from repro.graph.gir import (
    Graph,
    GraphError,
    Node,
    Tensor,
    TensorType,
)
from repro.graph.loadable import CompiledModel, NcoreLoadable, Segment
from repro.graph.partitioner import partition
from repro.graph.passes import PassManager, default_pipeline
from repro.graph.planner import MemoryPlan, plan_memory
from repro.graph.reference import execute_float, infer_shapes

__all__ = [
    "CompiledModel",
    "Graph",
    "GraphError",
    "MemoryPlan",
    "NcoreLoadable",
    "Node",
    "PassManager",
    "Segment",
    "Tensor",
    "TensorType",
    "default_pipeline",
    "execute_float",
    "infer_shapes",
    "partition",
    "plan_memory",
]
