"""The quantized-model converter.

Section II-A.6: Ncore targets "specific 8-bit quantization schemes [that]
have emerged that do not require re-training and achieve small reductions
in accuracy" — post-training affine quantization.  This package implements
the conversion pipeline: calibrate activation ranges on sample batches,
then rewrite a float graph into a uint8 graph with int32 biases, inserting
quantize/dequantize ops at the float boundaries.

bfloat16 conversion (the GNMT path: "migrating bfloat16 trained models to
inference on Ncore has become straightforward") is a pure dtype rewrite —
see :func:`convert_to_bf16`.
"""

from repro.quantize.calibrate import CalibrationResult, calibrate
from repro.quantize.convert import convert_to_bf16, quantize_graph

__all__ = ["CalibrationResult", "calibrate", "convert_to_bf16", "quantize_graph"]
