"""Calibration: observe activation ranges on representative batches."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.gir import Graph
from repro.graph.reference import execute_node


@dataclass
class CalibrationResult:
    """Observed (min, max) per activation tensor."""

    ranges: dict[str, tuple[float, float]] = field(default_factory=dict)

    def observe(self, name: str, values: np.ndarray) -> None:
        lo, hi = float(np.min(values)), float(np.max(values))
        if name in self.ranges:
            old_lo, old_hi = self.ranges[name]
            lo, hi = min(lo, old_lo), max(hi, old_hi)
        self.ranges[name] = (lo, hi)

    def range_of(self, name: str) -> tuple[float, float]:
        try:
            return self.ranges[name]
        except KeyError:
            raise KeyError(
                f"tensor {name!r} was never observed during calibration"
            ) from None


def calibrate(graph: Graph, batches: list[dict[str, np.ndarray]]) -> CalibrationResult:
    """Run the float graph over calibration batches, recording every
    activation tensor's dynamic range."""
    if not batches:
        raise ValueError("calibration needs at least one batch")
    result = CalibrationResult()
    for feeds in batches:
        values: dict[str, np.ndarray] = {}
        for name, tensor in graph.tensors.items():
            if tensor.is_constant:
                values[name] = tensor.data
        for name in graph.inputs:
            values[name] = np.asarray(feeds[name])
            result.observe(name, values[name])
        for node in graph.nodes:
            ins = [values[name] for name in node.inputs]
            outs = execute_node(graph, node, ins)
            for name, value in zip(node.outputs, outs, strict=False):
                values[name] = value
                if np.issubdtype(np.asarray(value).dtype, np.floating):
                    result.observe(name, value)
    return result
