"""Graph conversion: float32 -> quantized uint8, or float32 -> bfloat16.

The uint8 scheme is the re-training-free affine scheme the paper adopts
(section II-A.6): activations and weights are per-tensor affine uint8,
biases are int32 at scale ``s_input * s_weight``, and each quantized op
requantizes its 32-bit accumulator to the output tensor's parameters —
exactly the arithmetic Ncore's OUT unit implements.

Ops with no efficient integer form (softmax, NMS, ...) stay in float;
``quantize`` / ``dequantize`` nodes are inserted at every boundary.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import (
    ChannelQuantParams,
    NcoreDType,
    QuantParams,
    choose_channel_quant_params,
    choose_quant_params,
    quantize,
    to_bfloat16,
)
from repro.graph.gir import Graph, GraphError, Node, Tensor, TensorType
from repro.quantize.calibrate import CalibrationResult

# Ops rewritten to integer arithmetic.
QUANTIZABLE_OPS = frozenset(
    {
        "conv2d",
        "depthwise_conv2d",
        "fully_connected",
        "add",
        "max_pool",
        "avg_pool",
        "mean",
        "concat",
        "relu",
        "relu6",
        "reshape",
        "identity",
    }
)

# Pool-like ops that must preserve their input's quantization parameters.
_SAME_QP_AS_INPUT = frozenset(
    {"max_pool", "avg_pool", "relu", "relu6", "reshape", "identity"}
)


# Output-channel axis of each weight layout.
_WEIGHT_CHANNEL_AXIS = {"conv2d": 3, "depthwise_conv2d": 2, "fully_connected": 1}


class _Converter:
    def __init__(
        self,
        graph: Graph,
        calibration: CalibrationResult,
        dtype: NcoreDType,
        per_channel_weights: bool = False,
    ):
        self.src = graph
        self.cal = calibration
        self.act_dtype = dtype
        self.per_channel_weights = per_channel_weights
        self.out = Graph(graph.name + "_quant")
        # For each source tensor, the names of its float / quantized
        # versions in the output graph (created lazily).
        self.float_version: dict[str, str] = {}
        self.quant_version: dict[str, str] = {}
        self.counter = 0

    # -- helpers ---------------------------------------------------------

    def _fresh(self, base: str) -> str:
        self.counter += 1
        return f"{base}__q{self.counter}"

    def _activation_qp(self, name: str) -> QuantParams:
        lo, hi = self.cal.range_of(name)
        return choose_quant_params(lo, hi, self.act_dtype)

    def _ensure_quant(self, name: str) -> str:
        """Return a quantized version of source activation ``name``."""
        if name in self.quant_version:
            return self.quant_version[name]
        if name not in self.float_version:
            raise GraphError(f"tensor {name!r} has no version yet (graph order bug)")
        qp = self._activation_qp(name)
        qname = self._fresh(name)
        shape = self.src.tensor(name).shape
        self.out.add_tensor(Tensor(qname, TensorType(shape, self.act_dtype), quant=qp))
        self.out.add_node(
            Node(self._fresh(f"quantize_{name}"), "quantize", [self.float_version[name]], [qname])
        )
        self.quant_version[name] = qname
        return qname

    def _ensure_float(self, name: str) -> str:
        if name in self.float_version:
            return self.float_version[name]
        if name not in self.quant_version:
            raise GraphError(f"tensor {name!r} has no version yet (graph order bug)")
        fname = self._fresh(name)
        shape = self.src.tensor(name).shape
        self.out.add_tensor(Tensor(fname, TensorType(shape, "float32")))
        self.out.add_node(
            Node(
                self._fresh(f"dequantize_{name}"),
                "dequantize",
                [self.quant_version[name]],
                [fname],
            )
        )
        self.float_version[name] = fname
        return fname

    @property
    def _weight_dtype(self) -> NcoreDType:
        """int16 activations pair with *int8* weights (the 16x8 scheme):
        s16 x s16 products would overflow the 32-bit saturating
        accumulator within a few taps, so the precision win comes from the
        activation side while weights stay 8-bit."""
        if self.act_dtype is NcoreDType.INT16:
            return NcoreDType.INT8
        return self.act_dtype

    def _quantize_weights(self, node: Node) -> tuple[str, QuantParams | ChannelQuantParams]:
        weights = self.src.tensor(node.inputs[1])
        if self.per_channel_weights:
            axis = _WEIGHT_CHANNEL_AXIS[node.op]
            qp = choose_channel_quant_params(weights.data, axis, self._weight_dtype)
            quantized = qp.quantize(weights.data)
        else:
            lo, hi = float(weights.data.min()), float(weights.data.max())
            qp = choose_quant_params(lo, hi, self._weight_dtype)
            quantized = quantize(weights.data, qp)
        qname = node.inputs[1] + "__w"
        if qname not in self.out.tensors:
            self.out.add_constant(qname, quantized, quant=qp)
        return qname, self.out.tensor(qname).quant

    def _quantize_bias(self, node: Node, input_qp: QuantParams, weight_qp) -> str | None:
        if len(node.inputs) <= 2:
            return None
        bias = self.src.tensor(node.inputs[2])
        # Bias lives in accumulator units: per-channel when the weights are.
        scale = input_qp.scale * (
            np.asarray(weight_qp.scales, dtype=np.float64)
            if isinstance(weight_qp, ChannelQuantParams)
            else weight_qp.scale
        )
        data = np.round(bias.data / scale).astype(np.int64)
        data = np.clip(data, -(2**31), 2**31 - 1).astype(np.int32)
        qname = node.inputs[2] + "__b"
        if qname not in self.out.tensors:
            self.out.add_constant(qname, data)
        return qname

    # -- main loop -------------------------------------------------------

    def convert(self, dequantize_outputs: bool) -> Graph:
        for name in self.src.inputs:
            tensor = self.src.tensor(name)
            self.out.add_input(name, tensor.type)
            self.float_version[name] = name
        for name, tensor in self.src.tensors.items():
            if tensor.is_constant and name not in self.src.inputs:
                # Constants feeding float ops are copied verbatim on demand
                # via float_version; weights are handled per-node.
                self.float_version.setdefault(name, name)
        for node in self.src.nodes:
            if node.op in QUANTIZABLE_OPS:
                self._convert_quantized(node)
            else:
                self._convert_float(node)
        for name in self.src.outputs:
            if dequantize_outputs or name not in self.quant_version:
                self.out.mark_output(self._ensure_float(name))
            else:
                self.out.mark_output(self.quant_version[name])
        self.out.validate()
        return self.out

    def _convert_quantized(self, node: Node) -> None:
        op_inputs: list[str] = []
        if node.op in ("conv2d", "depthwise_conv2d", "fully_connected"):
            x_q = self._ensure_quant(node.inputs[0])
            w_q, w_qp = self._quantize_weights(node)
            op_inputs = [x_q, w_q]
            input_qp = self.out.tensor(x_q).quant
            bias = self._quantize_bias(node, input_qp, w_qp)
            if bias is not None:
                op_inputs.append(bias)
        else:
            for name in node.inputs:
                tensor = self.src.tensor(name)
                if tensor.is_constant:
                    # Quantized elementwise constants use their own range.
                    lo, hi = float(tensor.data.min()), float(tensor.data.max())
                    qp = choose_quant_params(lo, hi, self.act_dtype)
                    qname = name + "__c"
                    if qname not in self.out.tensors:
                        self.out.add_constant(qname, quantize(tensor.data, qp), quant=qp)
                    op_inputs.append(qname)
                else:
                    op_inputs.append(self._ensure_quant(name))
        out_name = node.outputs[0]
        shape = self.src.tensor(out_name).shape
        out_qp = (
            self.out.tensor(op_inputs[0]).quant
            if node.op in _SAME_QP_AS_INPUT
            else self._activation_qp(out_name)
        )
        self.out.add_tensor(Tensor(out_name, TensorType(shape, self.act_dtype), quant=out_qp))
        self.out.add_node(Node(node.name, node.op, op_inputs, [out_name], dict(node.attrs)))
        self.quant_version[out_name] = out_name

    def _convert_float(self, node: Node) -> None:
        op_inputs = []
        for name in node.inputs:
            tensor = self.src.tensor(name)
            if tensor.is_constant:
                if name not in self.out.tensors:
                    self.out.add_constant(name, tensor.data)
                op_inputs.append(name)
            else:
                op_inputs.append(self._ensure_float(name))
        for out_name in node.outputs:
            src_type = self.src.tensor(out_name).type
            self.out.add_tensor(Tensor(out_name, src_type))
            self.float_version[out_name] = out_name
        self.out.add_node(Node(node.name, node.op, op_inputs, list(node.outputs), dict(node.attrs)))


def quantize_graph(
    graph: Graph,
    calibration: CalibrationResult,
    dtype: NcoreDType = NcoreDType.UINT8,
    dequantize_outputs: bool = True,
    per_channel_weights: bool = False,
) -> Graph:
    """Convert a float graph to affine-quantized integer arithmetic.

    ``dtype`` selects the activation/weight type: uint8/int8 for the
    standard 8-bit path, or int16 — the fallback "particularly useful to
    maintain precision" (section II-A.6) at 4x the NPU issue latency.
    ``per_channel_weights`` quantizes conv/dense weights per output
    channel, using the OUT unit's per-lane requantization registers.
    """
    if dtype not in (NcoreDType.UINT8, NcoreDType.INT8, NcoreDType.INT16):
        raise ValueError("post-training quantization targets integer dtypes")
    return _Converter(graph, calibration, dtype, per_channel_weights).convert(
        dequantize_outputs
    )


def convert_to_bf16(graph: Graph) -> Graph:
    """Rewrite a float32 graph to bfloat16 (the GNMT conversion path).

    Constants are rounded to bfloat16 once at conversion time; activation
    tensors are re-typed so the runtime and NKL schedule them as bf16
    (3-cycle NPU issues, 2 bytes/element).
    """
    out = Graph(graph.name + "_bf16")
    for name, tensor in graph.tensors.items():
        if tensor.is_constant:
            if tensor.type.dtype == "float32":
                data = to_bfloat16(tensor.data)
                out.add_tensor(
                    Tensor(name, TensorType(tensor.shape, NcoreDType.BF16), data)
                )
            else:
                out.add_tensor(Tensor(name, tensor.type, tensor.data))
        else:
            dtype = NcoreDType.BF16 if tensor.type.dtype == "float32" else tensor.type.dtype
            out.add_tensor(Tensor(name, TensorType(tensor.shape, dtype)))
    out.inputs = list(graph.inputs)
    out.outputs = list(graph.outputs)
    for node in graph.nodes:
        out.add_node(Node(node.name, node.op, list(node.inputs), list(node.outputs), dict(node.attrs)))
    out.validate()
    return out
