"""The discrete-event execution engine: simulated clock, event queue, tasks.

The paper's serving behaviour (section VI, Figs. 12-14) comes from
overlapping Ncore compute with batchable x86 work across many in-flight
queries.  Modelling that faithfully needs *one* notion of time shared by
every actor — Ncore instances, the x86 worker pool, the batching queue,
the load generator — and a scheduler that interleaves them.  This module
is that scheduler: a deterministic discrete-event kernel in the style of
cycle-level NPU simulators (ONNXim's tick/event loop), small enough to
audit but complete enough to host the whole serving stack.

Design points:

- **Simulated time only.**  ``Engine.now`` is a float in seconds of model
  time; nothing here reads the wall clock, so every run is reproducible
  and percentile statistics are exact functions of the seed.
- **Deterministic ordering.**  The event queue breaks timestamp ties by
  insertion sequence number, so two runs of the same schedule pop events
  in the same order — the property the seed-determinism tests pin down.
- **Cooperative tasks.**  A task is a plain generator that yields
  :class:`Event` objects (timeouts, resource grants, completions) and is
  resumed with the event's value — the same coroutine structure the
  resumable :meth:`repro.ncore.machine.Ncore.step` API plugs into.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterator


class EngineError(RuntimeError):
    """Engine-level failures (bad yields, double triggers, dead tasks)."""


class Event:
    """One-shot occurrence tasks can wait on.

    An event starts *pending*; :meth:`succeed` (or :meth:`fail`) triggers
    it, resuming every waiting task at the engine's current time with the
    event's value.  Triggering twice is an error — occurrences are facts.
    """

    __slots__ = ("engine", "_callbacks", "triggered", "value", "error")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._callbacks: list[Callable[[Event], None]] = []
        self.triggered = False
        self.value: Any = None
        self.error: BaseException | None = None

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise EngineError("event already triggered")
        self.triggered = True
        self.value = value
        for callback in self._callbacks:
            self.engine._post(0.0, callback, self)
        self._callbacks.clear()
        return self

    def fail(self, error: BaseException) -> "Event":
        if self.triggered:
            raise EngineError("event already triggered")
        self.triggered = True
        self.error = error
        for callback in self._callbacks:
            self.engine._post(0.0, callback, self)
        self._callbacks.clear()
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Late subscribers still observe the occurrence (next delta).
            self.engine._post(0.0, callback, self)
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that triggers itself ``delay`` seconds in the future."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        super().__init__(engine)
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} seconds into the past")
        engine._post(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


TaskGenerator = Generator[Event, Any, Any]


class Task(Event):
    """A running cooperative task; itself an event that triggers on return.

    The wrapped generator yields :class:`Event` objects; each resume
    passes the event's value back in (or throws the event's error).  The
    generator's ``return`` value becomes the task's event value, so tasks
    compose: ``result = yield engine.process(subtask())``.
    """

    __slots__ = ("name", "_generator")

    def __init__(self, engine: "Engine", generator: TaskGenerator, name: str = "") -> None:
        super().__init__(engine)
        self.name = name or getattr(generator, "__name__", "task")
        self._generator = generator
        engine._post(0.0, self._resume, _START)

    def _resume(self, event: "Event") -> None:
        try:
            if event is _START:
                target = self._generator.send(None)
            elif event.error is not None:
                target = self._generator.throw(event.error)
            else:
                target = self._generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise EngineError(
                f"task {self.name!r} yielded {type(target).__name__}; "
                "tasks must yield Event objects (timeout, request, process)"
            )
        if target.engine is not self.engine:
            raise EngineError(f"task {self.name!r} yielded an event from another engine")
        target.add_callback(self._resume)


class _Start(Event):
    """Sentinel used to kick a task's first resume (never triggered)."""

    __slots__ = ()

    def __init__(self) -> None:  # no engine; never scheduled
        self.triggered = False
        self.value = None
        self.error = None


_START = _Start()


class Engine:
    """The discrete-event scheduler: one simulated clock, one event queue.

    All model actors — resumable Ncore machines, the batching queue, the
    modelled x86 worker pool, scenario load generators — share this clock,
    which is what lets N Ncore instances and a query stream interleave
    deterministically.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable, tuple]] = []
        self._sequence = 0
        self._events_dispatched = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def _post(self, delay: float, fn: Callable, *args: Any) -> None:
        """Internal: enqueue a callback ``delay`` seconds from now."""
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} seconds into the past")
        heapq.heappush(self._heap, (self.now + delay, self._sequence, fn, args))
        self._sequence += 1

    def call_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at an absolute simulated time."""
        self._post(time - self.now, fn, *args)

    def call_after(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after a simulated delay."""
        self._post(delay, fn, *args)

    def event(self) -> Event:
        """A fresh pending event (trigger it with ``.succeed(value)``)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: TaskGenerator, name: str = "") -> Task:
        """Start a cooperative task; returns the task (itself awaitable)."""
        return Task(self, generator, name=name)

    def all_of(self, events: list[Event]) -> Event:
        """An event that triggers once every listed event has triggered."""
        done = self.event()
        remaining = len(events)
        if remaining == 0:
            return done.succeed([])
        values: list[Any] = [None] * remaining
        state = {"left": remaining}

        def arm(index: int, event: Event) -> None:
            def on_trigger(ev: Event) -> None:
                values[index] = ev.value
                state["left"] -= 1
                if state["left"] == 0:
                    done.succeed(values)

            event.add_callback(on_trigger)

        for index, event in enumerate(events):
            arm(index, event)
        return done

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Dispatch events in time order; returns the final ``now``.

        ``until`` bounds simulated time (events beyond it stay queued and
        ``now`` lands exactly on ``until``); ``max_events`` bounds work so
        a mis-wired schedule fails fast instead of spinning forever.
        """
        dispatched = 0
        while self._heap:
            time, _seq, fn, args = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            fn(*args)
            dispatched += 1
            self._events_dispatched += 1
            if dispatched >= max_events:
                raise EngineError(
                    f"engine dispatched {max_events} events without draining; "
                    "likely a runaway schedule (use a larger max_events if real)"
                )
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending(self) -> int:
        """Number of queued events (diagnostics / tests)."""
        return len(self._heap)

    @property
    def events_dispatched(self) -> int:
        """Total events dispatched over the engine's lifetime."""
        return self._events_dispatched

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def trace_span(
        self,
        name: str,
        track: str,
        start: float,
        end: float,
        args: dict | None = None,
        context=None,
    ) -> None:
        """Record a simulated-time span (seconds) on the installed tracer.

        ``context`` is an optional :class:`repro.obs.context.TraceContext`
        tying the span into one query's causal tree.
        """
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                name, track,
                start_us=start * 1e6, duration_us=max(0.0, end - start) * 1e6,
                args=args, context=context,
            )


def every(engine: Engine, interval: float, fn: Callable[[], bool | None]) -> TaskGenerator:
    """A periodic task body: call ``fn`` each interval until it returns True."""
    def body() -> Iterator[Event]:
        while True:
            yield engine.timeout(interval)
            if fn():
                return

    return body()
