"""``repro.engine``: the resumable discrete-event execution engine.

Everything that used to be a private blocking loop — ``Ncore.run()``, one
``InferenceSession`` per query, analytic MLPerf scenarios — now runs as
cooperative tasks on one simulated clock:

- :mod:`repro.engine.core`       -- event queue, simulated time, tasks;
- :mod:`repro.engine.resources`  -- capacity-limited resources (worker
  pools, Ncore executors) with FIFO grants;
- :mod:`repro.engine.batching`   -- the dynamic-batching queue
  (max batch / max wait) in front of the Ncore executor;
- :mod:`repro.engine.machine`    -- cooperative tasks driving the
  instruction-level Ncore simulator through its resumable ``step`` API.

Simulated time only — no wall clock — so every schedule is deterministic
and seed-reproducible.  See ``docs/execution-engine.md``.
"""

from repro.engine.batching import Batch, BatchQueue, BatchQueueStats
from repro.engine.core import Engine, EngineError, Event, Task, Timeout, every
from repro.engine.machine import DEFAULT_BUDGET_CYCLES, MachineRun, MachineTask
from repro.engine.resources import Resource, WorkerPool

__all__ = [
    "Batch",
    "BatchQueue",
    "BatchQueueStats",
    "DEFAULT_BUDGET_CYCLES",
    "Engine",
    "EngineError",
    "Event",
    "MachineRun",
    "MachineTask",
    "Resource",
    "Task",
    "Timeout",
    "WorkerPool",
    "every",
]
