"""Engine adapter for the instruction-level Ncore simulator.

:class:`MachineTask` runs one :class:`~repro.ncore.machine.Ncore` as a
cooperative engine task: each turn it calls the resumable
:meth:`~repro.ncore.machine.Ncore.step` with a cycle budget, advances the
engine clock by the simulated cycles actually consumed, and yields — so
N machines (one per socket in a multisocket system) interleave under one
engine clock instead of each monopolising a blocking ``run()`` loop.

The budget is the interleaving granularity, not a correctness knob:
architectural state lives in the machine, so any slicing produces the
same final state and the same total cycle count as one blocking run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.engine.core import Engine, Event, Task
from repro.isa import Instruction
from repro.ncore.machine import MachineRunResult, Ncore

#: Default interleave granularity (cycles per engine turn).
DEFAULT_BUDGET_CYCLES = 4096  # row-bytes-ok: a cycle budget, not a row width


@dataclass
class MachineRun:
    """Aggregate outcome of one engine-driven machine execution."""

    steps: list[MachineRunResult] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def cycles(self) -> int:
        return sum(step.cycles for step in self.steps)

    @property
    def instructions(self) -> int:
        return sum(step.instructions for step in self.steps)

    @property
    def halted(self) -> bool:
        return bool(self.steps) and self.steps[-1].halted

    @property
    def stop_reason(self) -> str:
        return self.steps[-1].stop_reason if self.steps else "not-run"


class MachineTask:
    """One Ncore machine scheduled cooperatively on an engine.

    ``task`` (a :class:`~repro.engine.core.Task`) triggers with the
    :class:`MachineRun` when the program halts, so other engine tasks can
    ``yield machine_task.task`` to join on completion.
    """

    def __init__(
        self,
        engine: Engine,
        machine: Ncore,
        program: list[Instruction] | None = None,
        budget_cycles: int = DEFAULT_BUDGET_CYCLES,
        name: str = "ncore",
        trace: bool = True,
        amortize_overshoot: bool = False,
        trace_context=None,
    ) -> None:
        if budget_cycles < 1:
            raise ValueError("budget_cycles must be at least 1")
        self.engine = engine
        self.machine = machine
        self.budget_cycles = budget_cycles
        self.name = name
        self.trace = trace
        # A step can exceed its budget: one instruction's repeat block is
        # committed whole (interpreted or trace-fused), so a long fused
        # macro-op may run past the slice boundary.  The engine clock
        # always advances by the cycles actually consumed — overshoot
        # never drifts simulated time — but it does stretch the
        # interleaving granularity, which `amortize_overshoot` repays by
        # shrinking later budgets until the average slice matches.
        self.amortize_overshoot = amortize_overshoot
        # Optional repro.obs.context.TraceContext: when the machine runs
        # on behalf of one query (or one batch), its step spans join that
        # query's causal tree in the exported trace.
        self.trace_context = trace_context
        self.overshoot_cycles = 0
        self.run = MachineRun()
        if program is not None:
            machine.load_program(program)
        self.task: Task = engine.process(self._body(), name=name)

    def _body(self) -> Iterator[Event]:
        from repro.obs.metrics import get_metrics

        machine = self.machine
        clock_hz = machine.config.clock_hz
        self.run.started_at = self.engine.now
        debt = 0
        while not machine.halted:
            start = self.engine.now
            requested = self.budget_cycles
            if self.amortize_overshoot:
                requested = max(1, self.budget_cycles - debt)
            result = machine.step(requested)
            overshoot = result.cycles - requested
            if overshoot > 0:
                self.overshoot_cycles += overshoot
                metrics = get_metrics()
                if metrics.enabled:
                    metrics.counter(
                        "engine.machine.overshoot_cycles", unit="cycles"
                    ).inc(overshoot)
            if self.amortize_overshoot:
                debt = max(0, debt + result.cycles - self.budget_cycles)
            self.run.steps.append(result)
            elapsed = result.cycles / clock_hz
            if self.trace:
                context = self.trace_context
                self.engine.trace_span(
                    f"{self.name}.step", "engine.ncore", start, start + elapsed,
                    args={
                        "cycles": result.cycles,
                        "instructions": result.instructions,
                        "stop_reason": result.stop_reason,
                    },
                    context=(
                        context.child(f"step[{len(self.run.steps) - 1}]")
                        if context is not None else None
                    ),
                )
            # Advance the shared clock by the simulated time consumed and
            # yield the engine to every other task scheduled before then.
            yield self.engine.timeout(elapsed)
            if result.stop_reason in ("breakpoint", "perf_counter"):
                # Debug stops need an external actor (the runtime) to
                # resume; a cooperative task must not spin on them.
                break
            if result.cycles == 0 and not machine.halted:
                raise RuntimeError(
                    f"machine task {self.name!r} made no progress "
                    f"(stop_reason={result.stop_reason!r})"
                )
        self.run.finished_at = self.engine.now
        return self.run
