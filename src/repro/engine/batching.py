"""The dynamic-batching queue in front of the Ncore executor.

Section VI-A's Offline submissions batch queries ("a batch size of 64 to
increase the arithmetic intensity"); a Server scenario has to *assemble*
those batches from an arrival stream under a latency bound.  This is the
standard two-knob policy: a batch closes when it reaches ``max_batch``
items, or ``max_wait`` simulated seconds after its first item arrived,
whichever comes first.  ``max_wait=0`` degenerates to greedy batching
(whatever is queued when the executor frees up, at least one item), and
``max_batch=1`` degenerates to pure FIFO — the degenerate schedules the
SingleStream scenario re-uses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.engine.core import Engine, Event
from repro.obs.metrics import get_metrics


@dataclass
class Batch:
    """One assembled batch: items plus its assembly timestamps."""

    items: list[Any]
    opened_at: float      # arrival time of the first item
    closed_at: float      # when the batch was sealed
    reason: str           # "size" | "deadline" | "greedy" | "flush"
    sequence: int = 0

    @property
    def size(self) -> int:
        return len(self.items)

    @property
    def assembly_seconds(self) -> float:
        return self.closed_at - self.opened_at


@dataclass
class BatchQueueStats:
    """Running batch-assembly statistics for reports."""

    batches: int = 0
    items: int = 0
    by_reason: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.items / self.batches if self.batches else 0.0

    def record(self, batch: Batch) -> None:
        self.batches += 1
        self.items += batch.size
        self.by_reason[batch.reason] = self.by_reason.get(batch.reason, 0) + 1


class BatchQueue:
    """Assemble an item stream into batches under (max_batch, max_wait).

    Producers call :meth:`put`; consumers ``yield queue.get()`` and are
    resumed with a :class:`Batch`.  Sealed batches buffer FIFO when no
    consumer is waiting, so multiple Ncore executors can pull from one
    queue (the multisocket sharding path).
    """

    def __init__(
        self,
        engine: Engine,
        max_batch: int = 8,
        max_wait: float = 0.0,
        name: str = "batch-queue",
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"{name}: max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError(f"{name}: max_wait must be non-negative")
        self.engine = engine
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.name = name
        self.stats = BatchQueueStats()
        self._open: list[Any] = []
        self._opened_at = 0.0
        self._generation = 0        # invalidates stale deadline timers
        self._ready: deque[Batch] = deque()
        self._getters: deque[Event] = deque()
        self._sequence = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def put(self, item: Any) -> None:
        """Add one item; may seal a batch (size) or arm the deadline."""
        if not self._open:
            self._opened_at = self.engine.now
            if self.max_wait > 0:
                generation = self._generation
                self.engine.call_after(self.max_wait, self._deadline, generation)
        self._open.append(item)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.gauge(
                "engine.batch_queue.depth", labels={"queue": self.name}
            ).set(self.depth)
        if len(self._open) >= self.max_batch:
            self._seal("size")
        elif self.max_wait == 0 and self._getters:
            # Greedy mode: an idle executor takes whatever just arrived.
            self._seal("greedy")

    def _deadline(self, generation: int) -> None:
        # A stale timer (its batch already sealed by size) is a no-op.
        if generation == self._generation and self._open:
            self._seal("deadline")

    def _seal(self, reason: str) -> None:
        batch = Batch(
            items=self._open,
            opened_at=self._opened_at,
            closed_at=self.engine.now,
            reason=reason,
            sequence=self._sequence,
        )
        self._sequence += 1
        self._open = []
        self._generation += 1
        self.stats.record(batch)
        metrics = get_metrics()
        if metrics.enabled:
            labels = {"queue": self.name}
            metrics.counter("engine.batch_queue.batches", labels=labels).inc()
            metrics.histogram(
                "engine.batch_queue.batch_size", labels=labels
            ).observe(batch.size)
        if self._getters:
            self._getters.popleft().succeed(batch)
        else:
            self._ready.append(batch)

    def flush(self) -> None:
        """Seal the open batch regardless of size/deadline (end of stream)."""
        if self._open:
            self._seal("flush")

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def get(self) -> Event:
        """An event resumed with the next sealed :class:`Batch`."""
        grant = self.engine.event()
        if self._ready:
            grant.succeed(self._ready.popleft())
        else:
            self._getters.append(grant)
            # Greedy mode: if items are already waiting and an executor
            # just became idle, hand them over immediately.
            if self.max_wait == 0 and self._open:
                self._seal("greedy")
        return grant

    @property
    def depth(self) -> int:
        """Items currently waiting (open batch plus sealed, unclaimed ones)."""
        return len(self._open) + sum(b.size for b in self._ready)
