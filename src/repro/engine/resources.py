"""Capacity-limited resources for engine tasks.

Models the contended actors of the serving stack: the x86 worker pool
(``cores - 1`` preprocessing/postprocessing workers — one core drives
Ncore, section VI-C), the per-socket Ncore executor (capacity 1: one
batch in flight per coprocessor), and the serial driver core.  Grants are
FIFO in request order, which keeps every schedule deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.engine.core import Engine, EngineError, Event, TaskGenerator


class Resource:
    """A counting resource with FIFO grant order.

    Tasks ``yield resource.request()`` to acquire one slot and must call
    :meth:`release` when done.  :meth:`use` packages the common
    acquire / hold-for-seconds / release pattern as a subtask.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "resource") -> None:
        if capacity < 1:
            raise EngineError(f"{name}: capacity must be at least 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: deque[Event] = deque()
        # Cumulative busy integral (slot-seconds) for utilization reports.
        self._busy_slot_seconds = 0.0
        self._last_change = 0.0

    # ------------------------------------------------------------------

    def _account(self) -> None:
        now = self.engine.now
        self._busy_slot_seconds += self.in_use * (now - self._last_change)
        self._last_change = now

    def request(self) -> Event:
        """An event that triggers when one slot is granted to the caller."""
        grant = self.engine.event()
        if self.in_use < self.capacity:
            self._account()
            self.in_use += 1
            grant.succeed(self)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return one slot; the oldest waiter (if any) is granted in-place."""
        if self.in_use < 1:
            raise EngineError(f"{self.name}: release without a matching request")
        if self._waiters:
            # Hand the slot straight to the next waiter: occupancy stays.
            self._waiters.popleft().succeed(self)
        else:
            self._account()
            self.in_use -= 1

    def use(self, hold_seconds: float) -> TaskGenerator:
        """Subtask: acquire a slot, hold it for simulated time, release."""
        def body() -> Iterator[Event]:
            yield self.request()
            try:
                yield self.engine.timeout(hold_seconds)
            finally:
                self.release()

        return body()

    # ------------------------------------------------------------------

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def utilization(self) -> float:
        """Mean busy fraction of all slots up to the current engine time."""
        self._account()
        elapsed = self.engine.now
        if elapsed <= 0.0:
            return 0.0
        return self._busy_slot_seconds / (elapsed * self.capacity)


class WorkerPool(Resource):
    """The modelled x86 worker pool: N cores chewing through task seconds.

    ``submit`` returns an event that triggers when one worker has spent
    ``seconds`` of simulated time on the work item — the engine analogue
    of dispatching a preprocessing job onto a core.
    """

    def __init__(self, engine: Engine, workers: int, name: str = "x86-pool") -> None:
        super().__init__(engine, capacity=workers, name=name)

    def submit(self, seconds: float) -> Event:
        return self.engine.process(self.use(seconds), name=f"{self.name}.work")
