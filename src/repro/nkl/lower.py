"""Lowering: GIR segments -> Ncore Loadables.

Maps every node of an Ncore segment to an NKL kernel schedule, plans the
scratchpad memory, and packages the result as an
:class:`~repro.graph.loadable.NcoreLoadable` whose cycle estimate the
runtime and the MLPerf harness consume.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import NcoreDType
from repro.graph.gir import Graph, Node
from repro.graph.loadable import KernelInvocation, NcoreLoadable
from repro.graph.partitioner import Segment
from repro.graph.planner import MemoryPlan, plan_memory
from repro.ncore.config import NcoreConfig
from repro.nkl.schedule import (
    KernelSchedule,
    conv2d_schedule,
    depthwise_schedule,
    elementwise_schedule,
    lstm_schedule,
    matmul_schedule,
    pool_schedule,
)


class UnsupportedOpError(NotImplementedError):
    """The NKL has no kernel for this op (the partitioner should have sent
    it to x86)."""


def _node_dtype(graph: Graph, node: Node) -> NcoreDType:
    """Execution datatype for a node: the output tensor's type, with
    float32 running as bfloat16 on Ncore (the GNMT path, section VI-B)."""
    dtype = graph.tensor(node.outputs[0]).type.dtype
    if dtype in ("float32", "int32"):
        return NcoreDType.BF16
    return dtype


def _schedule_node(
    graph: Graph, node: Node, config: NcoreConfig | None = None
) -> KernelSchedule:
    dtype = _node_dtype(graph, node)
    out_shape = graph.tensor(node.outputs[0]).shape
    if node.op == "conv2d":
        w = graph.tensor(node.inputs[1]).shape  # (kh, kw, cin, cout)
        n, h, wd, k = out_shape
        return conv2d_schedule(w[2], k, h, wd, w[0], w[1], dtype, batch=n, config=config)
    if node.op == "depthwise_conv2d":
        w = graph.tensor(node.inputs[1]).shape  # (kh, kw, c)
        n, h, wd, c = out_shape
        return depthwise_schedule(c, h, wd, w[0], w[1], dtype, batch=n, config=config)
    if node.op == "fully_connected":
        w = graph.tensor(node.inputs[1]).shape  # (in, out)
        rows = int(np.prod(out_shape[:-1]))
        return matmul_schedule(rows, w[0], w[1], dtype, config=config)
    if node.op in ("max_pool", "avg_pool"):
        n, h, wd, c = out_shape
        kh, kw = node.attrs["ksize"]
        return pool_schedule(c, h, wd, kh, kw, dtype, batch=n, config=config)
    if node.op == "mean":
        # Global spatial mean: a full-window average pool.
        in_shape = graph.tensor(node.inputs[0]).shape
        return pool_schedule(
            in_shape[3], 1, 1, in_shape[1], in_shape[2], dtype, config=config
        )
    if node.op in ("add", "mul", "relu", "relu6", "tanh", "sigmoid", "concat", "identity", "slice", "reshape"):
        elements = int(np.prod(out_shape))
        return elementwise_schedule(elements, dtype, config=config)
    if node.op in ("quantize", "dequantize"):
        elements = int(np.prod(out_shape))
        return elementwise_schedule(elements, dtype, ops_per_row=2, config=config)
    if node.op == "lstm_cell":
        x_shape = graph.tensor(node.inputs[0]).shape
        hidden = graph.tensor(node.outputs[0]).shape[-1]
        return lstm_schedule(x_shape[0], x_shape[-1], hidden, dtype, config=config)
    if node.op == "lstm_step":
        # Split-weight LSTM step: the modelled hardware does one step of
        # input projection plus the recurrent matmul, so the cycle schedule
        # matches lstm_cell with the same (batch, in, hidden) dims.
        seq_shape = graph.tensor(node.inputs[0]).shape
        batch = graph.tensor(node.outputs[0]).shape[0]
        hidden = graph.tensor(node.outputs[0]).shape[-1]
        return lstm_schedule(batch, seq_shape[-1], hidden, dtype, config=config)
    if node.op == "attention":
        keys = graph.tensor(node.inputs[1]).shape  # (n, time, hidden)
        n, time, hidden = keys
        score = matmul_schedule(n * time, hidden, 1, dtype, config=config)
        context = matmul_schedule(n, time, hidden, dtype, config=config)
        softmax_rows = elementwise_schedule(n * time, dtype, ops_per_row=4, config=config)
        return KernelSchedule(
            kernel="attention",
            passes=score.passes + context.passes + softmax_rows.passes,
            inner_cycles=max(score.inner_cycles, context.inner_cycles),
            epilogue_cycles=score.epilogue_cycles,
            setup_cycles=score.setup_cycles,
            macs=score.macs + context.macs,
            weight_bytes=0,
            dtype=dtype,
            lanes=score.lanes,
        )
    raise UnsupportedOpError(f"no NKL kernel for op {node.op!r}")


def _weight_bytes(graph: Graph, node: Node, compress: bool = False) -> int:
    """Weight traffic for one node; optionally after the zero-RLE scheme
    the NDU's decompression engine consumes (section VII)."""
    total = 0
    for name in node.inputs:
        tensor = graph.tensor(name)
        if not tensor.is_constant:
            continue
        if compress:
            zero = 0
            quant = tensor.quant
            if quant is not None and hasattr(quant, "zero_point"):
                zero = quant.zero_point
            total += compressed_weight_bytes(tensor.data, zero)
        else:
            total += tensor.type.num_bytes
    return total


def compressed_weight_bytes(data: np.ndarray, zero_point: int = 0) -> int:
    """Size of a constant under the NDU's zero-RLE compression.

    One bitmap byte per 8 elements plus the payload bytes that differ from
    the zero(-point) byte — computed analytically (equivalent to
    ``len(repro.ncore.ndu.compress(bytes, zero=zero_point))``).
    """
    flat = np.frombuffer(
        np.ascontiguousarray(np.asarray(data)).tobytes(), dtype=np.uint8
    )
    payload = int(np.count_nonzero(flat != np.uint8(zero_point & 0xFF)))
    return -(-flat.size // 8) + payload


def lower_segment(
    graph: Graph,
    segment: Segment,
    config: NcoreConfig | None = None,
    name: str = "segment",
    compress_sparse_weights: bool = False,
    verify: bool = True,
    plan: MemoryPlan | None = None,
) -> NcoreLoadable:
    """Compile one Ncore segment into a loadable.

    ``compress_sparse_weights`` stores weights zero-RLE-compressed and has
    the NDU decompress them inline, shrinking the DMA traffic (and the
    streaming stalls) for sparse models at no NPU cost.

    ``verify`` (the default) runs the ``repro.analyze`` Loadable verifier
    over the result and raises
    :class:`~repro.analyze.AnalysisError` on error-severity findings —
    an illegal DMA schedule or uninitialized scratchpad read is rejected
    here, at compile time, instead of hanging the machine mid-run.

    ``plan`` supplies a precomputed memory plan (the staged compiler
    driver's ``plan`` stage); when None, planning happens here.
    """
    if segment.target != "ncore":
        raise ValueError("lower_segment only compiles Ncore segments")
    config = config or NcoreConfig()
    if plan is None:
        plan = plan_memory(graph, segment, config)
    loadable = NcoreLoadable(name=name, segment=segment, memory_plan=plan)
    for node in segment.nodes:
        schedule = _schedule_node(graph, node, config)
        loadable.kernels.append(
            KernelInvocation(
                node_name=node.name,
                op=node.op,
                kernel=schedule.kernel,
                cycles=schedule.cycles,
                macs=schedule.macs,
                weight_bytes=_weight_bytes(graph, node, compress_sparse_weights),
                output_tensor=node.outputs[0],
                lanes=schedule.lanes,
                meta={
                    "passes": schedule.passes,
                    "inner_cycles": schedule.inner_cycles,
                    "dtype": schedule.dtype.value,
                    "utilization": schedule.utilization,
                },
            )
        )
    loadable.weight_image_bytes = sum(k.weight_bytes for k in loadable.kernels)
    if verify:
        from repro.analyze import analyze_loadable, enforce

        enforce(analyze_loadable(graph, loadable, config), context=name)
    return loadable
