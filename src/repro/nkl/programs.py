"""Instruction-program emission for representative kernels.

These builders emit *real* Ncore instruction programs for the W x K mapping
(Fig. 6 / Fig. 7) and the data-layout helpers that tile tensors into
4096-byte rows.  They are executed on the instruction-level simulator in
tests and examples and checked bit-exactly against the numpy quantized
reference — proving that the NKL's schedules are implementable in the ISA,
not just countable.

Layout convention (the "internal data layout optimized for Ncore"):

- A 4096-byte row is 64 broadcast groups of 64 lanes.
- *Data rows*: one row per input channel c; the 64-byte spatial tile of
  channel c is repeated across all 64 groups (periodic tiling is what lets
  a full-row rotation slide the spatial window for every output channel at
  once, as in Fig. 6).
- *Weight rows*: byte (g * 64 + idx) of a weight row holds the weight for
  output channel g at reduction index idx; ``broadcast64`` walks idx.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import ChannelQuantParams, QuantParams, quantize_multiplier
from repro.isa import Instruction, assemble
from repro.ncore import Ncore
from repro.ncore.config import CHA_NCORE
from repro.nkl.schedule import BROADCAST_GROUP

# The shipped CHA geometry; per-machine programs read the same quantities
# from ``machine.config`` so a narrower or wider Ncore stages correctly.
ROW_BYTES = CHA_NCORE.row_bytes
GROUPS = CHA_NCORE.broadcast_groups  # 64 groups per row in CHA


class ProgramShapeError(ValueError):
    """The shape does not fit this program template's constraints."""


def _configure_activation(machine: Ncore, activation: str, output_qp: QuantParams) -> str:
    """Program the activation-related config registers; returns the
    assembly suffix for the requant statement."""
    if activation == "relu6":
        from repro.dtypes import quantize

        machine.set_act_qmax(int(quantize(np.array(6.0), output_qp)))
    return {"none": "", "relu": " relu", "relu6": " relu6"}[activation]


def tile_data_row(values: np.ndarray, row_bytes: int = ROW_BYTES) -> np.ndarray:
    """Tile up to 64 spatial values of one channel across every group."""
    values = np.asarray(values, dtype=np.uint8)
    if values.size > BROADCAST_GROUP:
        raise ProgramShapeError("a data row tiles at most 64 spatial positions")
    tile = np.zeros(BROADCAST_GROUP, dtype=np.uint8)
    tile[: values.size] = values
    return np.tile(tile, row_bytes // BROADCAST_GROUP)


def pack_weight_row(weights: np.ndarray, row_bytes: int = ROW_BYTES) -> np.ndarray:
    """Pack a (out_channels, reduction<=64) weight block into one row; the
    channel count is bounded by the row's broadcast-group count."""
    weights = np.asarray(weights, dtype=np.uint8)
    groups = row_bytes // BROADCAST_GROUP
    if weights.ndim != 2 or weights.shape[0] > groups or weights.shape[1] > BROADCAST_GROUP:
        raise ProgramShapeError(
            f"weight blocks are at most {groups} x {BROADCAST_GROUP} per "
            f"{row_bytes}-byte row"
        )
    row = np.zeros(row_bytes, dtype=np.uint8)
    k, c = weights.shape
    for g in range(k):
        row[g * BROADCAST_GROUP : g * BROADCAST_GROUP + c] = weights[g]
    return row


@dataclass
class WkPassResult:
    """Where a W x K pass left its results."""

    output_row: int
    spatial: int
    out_channels: int

    def read(self, machine: Ncore) -> np.ndarray:
        """Read back the (spatial, out_channels) result tile."""
        row_bytes = machine.config.row_bytes
        row = np.frombuffer(
            machine.read_data_ram(self.output_row * row_bytes, row_bytes), np.uint8
        )
        out = np.empty((self.spatial, self.out_channels), dtype=np.uint8)
        for k in range(self.out_channels):
            out[:, k] = row[k * BROADCAST_GROUP : k * BROADCAST_GROUP + self.spatial]
        return out


def emit_matmul_program(
    machine: Ncore,
    data: np.ndarray,
    weights: np.ndarray,
    input_qp: QuantParams,
    weight_qp: QuantParams,
    output_qp: QuantParams,
    activation: str = "none",
    data_row_base: int = 0,
    weight_row_base: int = 0,
    output_row: int = 64,
) -> tuple[list[Instruction], WkPassResult]:
    """Lay out and emit a quantized matmul (M<=64, C<=2048, N<=64).

    ``data`` is the quantized (M, C) activation matrix, ``weights`` the
    quantized (C, N) matrix.  Each reduction step c is one fused
    (bypass + broadcast64 + MAC) instruction — one clock per c, exactly the
    Fig. 6 inner-loop form.  Zero offsets and the requantization config are
    programmed through the slave interface, as the runtime does.
    """
    m, c = data.shape
    c2, n = weights.shape
    row_bytes = machine.config.row_bytes
    groups = machine.config.broadcast_groups
    if c != c2:
        raise ProgramShapeError("matmul reduction dims disagree")
    if m > BROADCAST_GROUP or n > groups:
        raise ProgramShapeError(
            f"one pass handles at most {BROADCAST_GROUP} rows x {groups} columns"
        )
    if c > machine.config.sram_rows - data_row_base:
        raise ProgramShapeError("reduction depth exceeds data RAM rows")
    # Stage data: one row per reduction index c, M values tiled.
    for ci in range(c):
        machine.write_data_ram(
            (data_row_base + ci) * row_bytes,
            tile_data_row(data[:, ci], row_bytes).tobytes(),
        )
    # Stage weights: weight rows pack (N x 64) reduction slices.
    weight_rows = -(-c // BROADCAST_GROUP)
    wt = np.zeros((weight_rows, row_bytes), dtype=np.uint8)
    for ci in range(c):
        row, idx = divmod(ci, BROADCAST_GROUP)
        for g in range(n):
            wt[row, g * BROADCAST_GROUP + idx] = weights[ci, g]
    for r in range(weight_rows):
        machine.write_weight_ram((weight_row_base + r) * row_bytes, wt[r].tobytes())
    # Requantization config: M = s_in * s_w / s_out.  Per-channel weight
    # parameters program the per-lane registers: lane (g*64 + m) carries
    # output column g's multiplier/shift (section IV-D.5's per-lane
    # range/scale/offset).
    if isinstance(weight_qp, ChannelQuantParams):
        if weight_qp.axis != 1 or weight_qp.num_channels != n:
            raise ProgramShapeError("per-channel params must cover the N axis")
        if len(set(weight_qp.zero_points)) != 1:
            raise ProgramShapeError(
                "the scalar weight zero-offset register needs one shared zero point"
            )
        lanes = machine.config.lanes
        mults = np.full(lanes, 1 << 30, dtype=np.int64)
        shifts = np.full(lanes, -1, dtype=np.int64)
        for g, scale in enumerate(weight_qp.scales):
            m_g, s_g = quantize_multiplier(
                input_qp.scale * scale / output_qp.scale
            )
            mults[g * BROADCAST_GROUP : (g + 1) * BROADCAST_GROUP] = m_g
            shifts[g * BROADCAST_GROUP : (g + 1) * BROADCAST_GROUP] = s_g
        machine.set_requant(mults, shifts, output_qp.zero_point)
        weight_zero = weight_qp.zero_points[0]
    else:
        mult, shift = quantize_multiplier(
            input_qp.scale * weight_qp.scale / output_qp.scale
        )
        machine.set_requant(mult, shift, output_qp.zero_point)
        weight_zero = weight_qp.zero_point
    machine.set_zero_offsets(data=input_qp.zero_point, weight=weight_zero)
    act = _configure_activation(machine, activation, output_qp)
    lines = [f"setaddr a0, {data_row_base}", "setaddr a5, 0"]
    # One fused instruction per 64-deep reduction chunk.
    for r in range(weight_rows):
        chunk = min(BROADCAST_GROUP, c - r * BROADCAST_GROUP)
        lines += [
            f"setaddr a3, {weight_row_base + r}",
            "setaddr a5, 0",
            f"loop {chunk} {{",
            "  bypass n0, dram[a0++]",
            "  broadcast64 n1, wtram[a3], a5, inc",
            "  mac.uint8 n0, n1, zoff",
            "}",
        ]
    lines += [
        f"setaddr a6, {output_row}",
        f"requant.uint8{act}",
        "store a6",
        "halt",
    ]
    return assemble("\n".join(lines)), WkPassResult(output_row, m, n)


def emit_conv1d_rotate_program(
    machine: Ncore,
    data: np.ndarray,
    weights: np.ndarray,
    input_qp: QuantParams,
    weight_qp: QuantParams,
    output_qp: QuantParams,
    output_row: int = 64,
) -> tuple[list[Instruction], WkPassResult]:
    """A 1-D convolution using the Fig. 6 rotate idiom.

    ``data`` is (W + taps - 1,) quantized samples of one channel (already
    including the halo), ``weights`` is (out_channels <= 64, taps <= 64).
    Each tap is one fused (broadcast + MAC dlast + rotate) instruction,
    with the rotation sliding the input window under every accumulator
    group simultaneously — the exact inner loop of Fig. 6.
    """
    k, taps = weights.shape
    w_out = data.size - taps + 1
    row_bytes = machine.config.row_bytes
    groups = machine.config.broadcast_groups
    if w_out < 1 or data.size > BROADCAST_GROUP:
        raise ProgramShapeError("the halo'd input must fit one 64-lane tile")
    if k > groups:
        raise ProgramShapeError(f"at most {groups} output channels per pass")
    machine.write_data_ram(0, tile_data_row(data, row_bytes).tobytes())
    machine.write_weight_ram(0, pack_weight_row(weights, row_bytes).tobytes())
    mult, shift = quantize_multiplier(
        input_qp.scale * weight_qp.scale / output_qp.scale
    )
    machine.set_zero_offsets(data=input_qp.zero_point, weight=weight_qp.zero_point)
    machine.set_requant(mult, shift, output_qp.zero_point)
    source = f"""
    setaddr a0, 0
    setaddr a3, 0
    setaddr a5, 0
    bypass n0, dram[a0]        ; latch the input tile (arms dlast)
    loop {taps} {{
      broadcast64 n1, wtram[a3], a5, inc
      mac.uint8 dlast, n1, zoff
      rotl n0, n0, 1
    }}
    setaddr a6, {output_row}
    requant.uint8
    store a6
    halt
    """
    return assemble(source), WkPassResult(output_row, w_out, k)


def reference_matmul_uint8(
    data: np.ndarray,
    weights: np.ndarray,
    input_qp: QuantParams,
    weight_qp: QuantParams,
    output_qp: QuantParams,
    activation: str = "none",
) -> np.ndarray:
    """The numpy golden model for the quantized matmul pass."""
    from repro.dtypes import requantize

    acc = (data.astype(np.int64) - input_qp.zero_point) @ (
        weights.astype(np.int64) - weight_qp.zero_point
    )
    mult, shift = quantize_multiplier(
        input_qp.scale * weight_qp.scale / output_qp.scale
    )
    out = requantize(
        acc.astype(np.int64).clip(-(2**31), 2**31 - 1).astype(np.int32),
        mult,
        shift,
        output_qp.zero_point,
        output_qp.dtype,
    )
    if activation == "relu":
        out = np.maximum(out, output_qp.zero_point)
    return out


@dataclass
class TiledMatmulResult:
    """Result placement of a multi-pass (tiled) matmul."""

    tiles: list[tuple[int, int, WkPassResult]]  # (m_base, n_base, pass)
    rows_total: int
    cols_total: int

    def read(self, machine: Ncore) -> np.ndarray:
        out = np.zeros((self.rows_total, self.cols_total), dtype=np.uint8)
        for m_base, n_base, tile in self.tiles:
            block = tile.read(machine)
            out[m_base : m_base + tile.spatial, n_base : n_base + tile.out_channels] = block
        return out


def emit_tiled_matmul_program(
    machine: Ncore,
    data: np.ndarray,
    weights: np.ndarray,
    input_qp: QuantParams,
    weight_qp: QuantParams,
    output_qp: QuantParams,
    activation: str = "none",
) -> tuple[list[Instruction], TiledMatmulResult]:
    """A full quantized matmul of arbitrary (M, C, N) via 64x64 passes.

    The W x K template handles one 64-row x 64-column tile per pass
    (Fig. 7); larger problems tile the output space, exactly how the NKL's
    channel/spatial passes cover a convolution.  Data rows for the tiles
    share the per-c staging; weight rows are packed per n-tile.
    """
    m, c = data.shape
    c2, n = weights.shape
    row_bytes = machine.config.row_bytes
    groups = machine.config.broadcast_groups
    if c != c2:
        raise ProgramShapeError("matmul reduction dims disagree")
    weight_rows_per_tile = -(-c // BROADCAST_GROUP)
    m_tiles = -(-m // BROADCAST_GROUP)
    n_tiles = -(-n // groups)
    data_rows_per_tile = c
    needed_rows = m_tiles * data_rows_per_tile + m_tiles * n_tiles  # data + outputs
    if needed_rows > machine.config.sram_rows:
        raise ProgramShapeError("problem exceeds the data RAM")
    # Stage data: per m-tile, one row per reduction index.
    for mt in range(m_tiles):
        chunk = data[mt * BROADCAST_GROUP : (mt + 1) * BROADCAST_GROUP]
        for ci in range(c):
            machine.write_data_ram(
                (mt * c + ci) * row_bytes,
                tile_data_row(chunk[:, ci], row_bytes).tobytes(),
            )
    # Stage weights: per n-tile, packed reduction slices.
    for nt in range(n_tiles):
        cols = weights[:, nt * groups : (nt + 1) * groups]
        wt = np.zeros((weight_rows_per_tile, row_bytes), dtype=np.uint8)
        for ci in range(c):
            row, idx = divmod(ci, BROADCAST_GROUP)
            for g in range(cols.shape[1]):
                wt[row, g * BROADCAST_GROUP + idx] = cols[ci, g]
        for r in range(weight_rows_per_tile):
            machine.write_weight_ram(
                (nt * weight_rows_per_tile + r) * row_bytes, wt[r].tobytes()
            )
    mult, shift = quantize_multiplier(
        input_qp.scale * weight_qp.scale / output_qp.scale
    )
    machine.set_zero_offsets(data=input_qp.zero_point, weight=weight_qp.zero_point)
    machine.set_requant(mult, shift, output_qp.zero_point)
    act = _configure_activation(machine, activation, output_qp)
    output_base = m_tiles * c
    lines: list[str] = []
    tiles: list[tuple[int, int, WkPassResult]] = []
    out_row = output_base
    for mt in range(m_tiles):
        m_size = min(BROADCAST_GROUP, m - mt * BROADCAST_GROUP)
        for nt in range(n_tiles):
            n_size = min(groups, n - nt * groups)
            # Zero the accumulators by a non-accumulating MAC with zero.
            lines.append("mac.uint8 zero, zero, noacc")
            lines.append(f"setaddr a0, {mt * c}")
            for r in range(weight_rows_per_tile):
                chunk = min(BROADCAST_GROUP, c - r * BROADCAST_GROUP)
                lines += [
                    f"setaddr a3, {nt * weight_rows_per_tile + r}",
                    "setaddr a5, 0",
                    f"loop {chunk} {{",
                    "  bypass n0, dram[a0++]",
                    "  broadcast64 n1, wtram[a3], a5, inc",
                    "  mac.uint8 n0, n1, zoff",
                    "}",
                ]
            lines += [
                f"setaddr a6, {out_row}",
                f"requant.uint8{act}",
                "store a6",
            ]
            tiles.append(
                (mt * BROADCAST_GROUP, nt * groups, WkPassResult(out_row, m_size, n_size))
            )
            out_row += 1
    lines.append("halt")
    return assemble("\n".join(lines)), TiledMatmulResult(tiles, m, n)


def emit_max_pool_rows_program(
    machine: Ncore,
    rows: np.ndarray,
    output_row: int | None = None,
) -> tuple[list[Instruction], int]:
    """Row-wise max reduction: out[j] = max_i rows[i][j].

    The pooling idiom on the NPU: MAX folds each streamed row against the
    accumulator (section IV-D.4 lists min/max among the NPU operations).
    Returns the program and the output row index.
    """
    rows = np.asarray(rows, dtype=np.uint8)
    count, width = rows.shape
    row_bytes = machine.config.row_bytes
    if width != row_bytes:
        raise ProgramShapeError(f"pooling rows must be full {row_bytes}-byte rows")
    if output_row is None:
        output_row = count + 1
    for i in range(count):
        machine.write_data_ram(i * row_bytes, rows[i].tobytes())
    machine.set_requant(1 << 30, -1, 0)  # identity requant
    source = f"""
    setaddr a0, 0
    mac.uint8 zero, zero, noacc     ; clear accumulators
    loop {count} {{
      max.uint8 dram[a0++], zero
    }}
    setaddr a6, {output_row}
    requant.uint8
    store a6
    halt
    """
    return assemble(source), output_row


def emit_elementwise_add_program(
    machine: Ncore,
    a: np.ndarray,
    b: np.ndarray,
    qp: QuantParams,
    output_qp: QuantParams,
    output_row: int = 4,
) -> tuple[list[Instruction], int]:
    """Quantized elementwise add of two rows sharing one scale.

    acc = (a - z) + (b - z), then requantized to the output parameters —
    the residual-add kernel for the common case where the compiler has
    already requantized both inputs to a common scale.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    row_bytes = machine.config.row_bytes
    if a.shape != (row_bytes,) or b.shape != (row_bytes,):
        raise ProgramShapeError(f"elementwise rows must be full {row_bytes}-byte rows")
    machine.write_data_ram(0, a.tobytes())
    machine.write_weight_ram(0, b.tobytes())
    mult, shift = quantize_multiplier(qp.scale / output_qp.scale)
    machine.set_zero_offsets(data=qp.zero_point, weight=qp.zero_point)
    machine.set_requant(mult, shift, output_qp.zero_point)
    source = f"""
    add.uint8 dram[a0], wtram[a1], noacc, zoff
    setaddr a6, {output_row}
    requant.uint8
    store a6
    halt
    """
    return assemble(source), output_row


@dataclass
class Conv2dResult:
    """Result placement of a small 2-D convolution."""

    output_base: int
    h_out: int
    w_out: int
    out_channels: int

    def read(self, machine: Ncore) -> np.ndarray:
        row_bytes = machine.config.row_bytes
        out = np.empty((1, self.h_out, self.w_out, self.out_channels), dtype=np.uint8)
        for y in range(self.h_out):
            row = np.frombuffer(
                machine.read_data_ram((self.output_base + y) * row_bytes, row_bytes),
                np.uint8,
            )
            for k in range(self.out_channels):
                out[0, y, :, k] = row[k * BROADCAST_GROUP : k * BROADCAST_GROUP + self.w_out]
        return out


def emit_conv2d_program(
    machine: Ncore,
    x: np.ndarray,
    weights: np.ndarray,
    input_qp: QuantParams,
    weight_qp: QuantParams,
    output_qp: QuantParams,
    padding: tuple = ((0, 0), (0, 0)),
    stride: tuple = (1, 1),
    activation: str = "none",
) -> tuple[list[Instruction], Conv2dResult]:
    """A full 2-D quantized convolution (stride 1 or 2) on the W x K mapping.

    Combines both Fig. 6 idioms: per (filter_y, in_channel, x-phase) the
    input tile is latched once, then each filter_x tap in that phase is one
    fused (broadcast64 + MAC dlast + rotate) instruction; the accumulators
    integrate across all (filter_y, in_channel) pairs before one
    requantize + store per output row.

    Strided convolutions stage *phase tiles* — the GCL's "data and code
    transformations such that the vector loads and stores operate on
    contiguous rows" (section IV-E): phase p holds input columns
    p, p+sw, p+2*sw, ...; tap s then reads phase (s % sw) rotated by
    (s // sw), so the inner loop keeps its one-clock-per-tap form.

    Constraints of this single-pass template: output width <= 64,
    kh * kw * cin <= 64 (the weight row indexes all taps of one output
    channel), out_channels <= 64.  Larger shapes tile across passes (see
    the schedule model); this template is the per-pass ground truth the
    cycle counts are built on.
    """
    kh, kw, cin, cout = weights.shape
    (pt, pb), (pl, pr) = padding
    sh, sw = stride
    if sh != sw or sh not in (1, 2):
        raise ProgramShapeError("this template supports stride 1 or 2")
    n, h, w, _ = x.shape
    if n != 1:
        raise ProgramShapeError("this template runs one image per pass")
    w_pad = w + pl + pr
    h_pad = h + pt + pb
    h_out, w_out = (h_pad - kh) // sh + 1, (w_pad - kw) // sw + 1
    # Each phase tile holds w_out + the rotation reach for its taps.
    tile_reach = w_out + (kw - 1) // sw
    if tile_reach > BROADCAST_GROUP:
        raise ProgramShapeError("output width must fit one 64-lane tile")
    if kh * kw * cin > BROADCAST_GROUP:
        raise ProgramShapeError("kh * kw * cin must fit one weight index range")
    row_bytes = machine.config.row_bytes
    groups = machine.config.broadcast_groups
    if cout > groups:
        raise ProgramShapeError(f"at most {groups} output channels per pass")
    # Stage padded input as phase tiles: one row per (y, c, phase).
    zp = input_qp.zero_point & 0xFF
    padded = np.full((h_pad, w_pad, cin), zp, dtype=np.uint8)
    padded[pt : pt + h, pl : pl + w, :] = x[0]
    def data_row(y, c, phase):
        return (y * cin + c) * sw + phase
    for y in range(h_pad):
        for c in range(cin):
            for phase in range(sw):
                tile = np.full(BROADCAST_GROUP, zp, dtype=np.uint8)
                cols = padded[y, phase::sw, c]
                tile[: min(cols.size, BROADCAST_GROUP)] = cols[:BROADCAST_GROUP]
                machine.write_data_ram(
                    data_row(y, c, phase) * row_bytes,
                    np.tile(tile, groups).tobytes(),
                )
    # Stage weights in the exact order the broadcast index walks them:
    # (filter_y, in_channel, phase, taps within the phase ascending).
    tap_order: list[tuple[int, int, int]] = []  # (r, c, s)
    for r in range(kh):
        for c in range(cin):
            for phase in range(sw):
                for s_tap in range(phase, kw, sw):
                    tap_order.append((r, c, s_tap))
    wrow = np.zeros(row_bytes, dtype=np.uint8)
    for k in range(cout):
        for idx, (r, c, s_tap) in enumerate(tap_order):
            wrow[k * BROADCAST_GROUP + idx] = weights[r, s_tap, c, k]
    machine.write_weight_ram(0, wrow.tobytes())
    mult, shift = quantize_multiplier(
        input_qp.scale * weight_qp.scale / output_qp.scale
    )
    machine.set_zero_offsets(data=input_qp.zero_point, weight=weight_qp.zero_point)
    machine.set_requant(mult, shift, output_qp.zero_point)
    act = _configure_activation(machine, activation, output_qp)
    output_base = h_pad * cin * sw
    lines = ["setaddr a3, 0"]
    for y in range(h_out):
        lines.append("mac.uint8 zero, zero, noacc   ; clear accumulators")
        lines.append("setaddr a5, 0")
        for r in range(kh):
            for c in range(cin):
                for phase in range(sw):
                    taps = list(range(phase, kw, sw))
                    if not taps:
                        continue
                    lines += [
                        f"setaddr a0, {data_row(y * sh + r, c, phase)}",
                        "bypass n0, dram[a0]",
                        f"loop {len(taps)} {{",
                        "  broadcast64 n1, wtram[a3], a5, inc",
                        "  mac.uint8 dlast, n1, zoff",
                        "  rotl n0, n0, 1",
                        "}",
                    ]
        lines += [
            f"setaddr a6, {output_base + y}",
            f"requant.uint8{act}",
            "store a6",
        ]
    lines.append("halt")
    program = assemble("\n".join(lines))
    return program, Conv2dResult(output_base, h_out, w_out, cout)


def run_streamed(machine: Ncore, program: list[Instruction], max_cycles: int = 100_000_000):
    """Execute a program of any length through the double-buffered IRAM.

    Programs longer than one bank are split into straight-line chunks; each
    chunk is loaded into the inactive bank and the banks are swapped —
    exactly the loading flow section IV-C.1 describes ("instruction RAM
    loading [does] not hinder Ncore's latency or throughput").  The
    machine's architectural state carries across swaps.  Returns the last
    chunk's MachineRunResult.
    """
    from repro.isa.instruction import SeqOp, SeqOpcode

    capacity = machine.iram.bank_instructions
    result = None
    position = 0
    while position < len(program):
        # Leave room for the bank-boundary halt we may need to append.
        chunk = list(program[position : position + capacity - 1])
        position += len(chunk)
        if not chunk[-1].is_halt:
            chunk.append(Instruction(seq=SeqOp(SeqOpcode.HALT)))
        result = machine.execute_program(chunk, max_cycles=max_cycles)
        if not result.halted:
            break
    return result


def emit_depthwise_program(
    machine: Ncore,
    x: np.ndarray,
    weights: np.ndarray,
    input_qp: QuantParams,
    weight_qp: QuantParams,
    output_qp: QuantParams,
    padding: tuple = ((0, 0), (0, 0)),
    activation: str = "none",
) -> tuple[list[Instruction], Conv2dResult]:
    """A depthwise 2-D convolution (stride 1) on the per-channel-group map.

    Depthwise layers assign each 64-lane group its *own* channel (the
    mapping behind :func:`repro.nkl.schedule.depthwise_schedule`): a data
    row holds channel g's padded input row in group g, so one fused
    (broadcast + MAC dlast + rotate) instruction advances every channel's
    filter tap simultaneously — kh * kw clocks per output row regardless
    of the channel count, the property that makes depthwise layers cheap
    in cycles but weak in MACs/cycle (the MobileNet utilization story).
    """
    kh, kw, c = weights.shape
    (pt, pb), (pl, pr) = padding
    n, h, w, _ = x.shape
    if n != 1:
        raise ProgramShapeError("this template runs one image per pass")
    w_pad = w + pl + pr
    h_pad = h + pt + pb
    h_out, w_out = h_pad - kh + 1, w_pad - kw + 1
    row_bytes = machine.config.row_bytes
    groups = machine.config.broadcast_groups
    if w_pad > BROADCAST_GROUP:
        raise ProgramShapeError("padded width must fit one 64-lane tile")
    if c > groups:
        raise ProgramShapeError(f"at most {groups} channels per pass")
    if kh * kw > BROADCAST_GROUP:
        raise ProgramShapeError("kh * kw must fit one weight index range")
    zp = input_qp.zero_point & 0xFF
    padded = np.full((h_pad, w_pad, c), zp, dtype=np.uint8)
    padded[pt : pt + h, pl : pl + w, :] = x[0]
    # Data rows: group g of row y holds channel g's padded input row.
    for y in range(h_pad):
        row = np.full(row_bytes, zp, dtype=np.uint8)
        for g in range(c):
            row[g * BROADCAST_GROUP : g * BROADCAST_GROUP + w_pad] = padded[y, :, g]
        machine.write_data_ram(y * row_bytes, row.tobytes())
    # Weight row: byte [g*64 + (r*kw + s)] holds weight[r, s, g].
    wrow = np.zeros(row_bytes, dtype=np.uint8)
    for g in range(c):
        for r in range(kh):
            for s_tap in range(kw):
                wrow[g * BROADCAST_GROUP + r * kw + s_tap] = weights[r, s_tap, g]
    machine.write_weight_ram(0, wrow.tobytes())
    mult, shift = quantize_multiplier(
        input_qp.scale * weight_qp.scale / output_qp.scale
    )
    machine.set_zero_offsets(data=input_qp.zero_point, weight=weight_qp.zero_point)
    machine.set_requant(mult, shift, output_qp.zero_point)
    act = _configure_activation(machine, activation, output_qp)
    output_base = h_pad
    lines = ["setaddr a3, 0"]
    for y in range(h_out):
        lines.append("mac.uint8 zero, zero, noacc   ; clear accumulators")
        lines.append("setaddr a5, 0")
        for r in range(kh):
            lines += [
                f"setaddr a0, {y + r}",
                "bypass n0, dram[a0]",
                f"loop {kw} {{",
                "  broadcast64 n1, wtram[a3], a5, inc",
                "  mac.uint8 dlast, n1, zoff",
                "  rotl n0, n0, 1",
                "}",
            ]
        lines += [
            f"setaddr a6, {output_base + y}",
            f"requant.uint8{act}",
            "store a6",
        ]
    lines.append("halt")
    # Results: group g carries channel g -> reuse Conv2dResult with
    # out_channels = c (its reader indexes groups by channel).
    return assemble("\n".join(lines)), Conv2dResult(output_base, h_out, w_out, c)


def emit_avg_pool_program(
    machine: Ncore,
    rows: np.ndarray,
    output_row: int | None = None,
) -> tuple[list[Instruction], int]:
    """Row-wise average: out[j] ~= mean_i rows[i][j].

    ADD folds each streamed row into the accumulator; the OUT unit's
    requantization multiplies by 1/count — the average-pool idiom (input
    and output share quantization parameters, so plain code averaging is
    exact up to the requantizer's rounding).
    """
    rows = np.asarray(rows, dtype=np.uint8)
    count, width = rows.shape
    row_bytes = machine.config.row_bytes
    if width != row_bytes:
        raise ProgramShapeError(f"pooling rows must be full {row_bytes}-byte rows")
    if output_row is None:
        output_row = count + 1
    for i in range(count):
        machine.write_data_ram(i * row_bytes, rows[i].tobytes())
    mult, shift = quantize_multiplier(1.0 / count)
    machine.set_requant(mult, shift, 0)
    source = f"""
    setaddr a0, 0
    mac.uint8 zero, zero, noacc     ; clear accumulators
    loop {count} {{
      add.uint8 dram[a0++], zero
    }}
    setaddr a6, {output_row}
    requant.uint8
    store a6
    halt
    """
    return assemble(source), output_row
