"""Kernel schedules: the Fig. 7 mapping and its closed-form cycle counts.

The convolution dataflow (Fig. 7): "One spatial dimension (width or height)
is selected and rounded up to the nearest power-of-2 ... W x K is
parallelized over Ncore's 4096 SIMD width."  Concretely, each row is a set
of 64-lane broadcast groups (64 groups of 64 lanes at the shipped 16-slice
point); each group serves one output channel, and the 64 lanes of a group
cover a tile of spatial positions (several output rows at once when the
width is small — this is how "sufficient parallelism is maintained" as
spatial dims shrink and channel counts grow with depth).

The inner loop runs one fused (broadcast + MAC + rotate) instruction per
(filter_y, filter_x, in_channel) step — one clock at 8 bits (Fig. 6) —
so the cycle count of a pass is simply the loop-nest volume plus the small
per-pass epilogue (requantize + store + address setup).

Every schedule function takes an optional :class:`NcoreConfig`; the group
*size* (64 lanes) is fixed by the broadcast network, while the group
*count* — the channel parallelism of a pass — and the row width scale with
``config.slices``.  Omitting the config yields the shipped CHA point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtypes import NcoreDType, dtype_info
from repro.ncore.config import BROADCAST_GROUP_LANES, NcoreConfig

BROADCAST_GROUP = BROADCAST_GROUP_LANES  # lanes per group (section IV-D.3)
PASS_EPILOGUE_CYCLES = 4        # requant + store + address bookkeeping
KERNEL_SETUP_CYCLES = 32        # per-layer: config registers, loop setup

# The shipped configuration, used when a schedule is requested without an
# explicit config (4096 lanes, 64 broadcast groups).
_CHA = NcoreConfig()


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


@dataclass(frozen=True)
class KernelSchedule:
    """The shape of one lowered kernel's execution."""

    kernel: str
    passes: int                  # output tiles: spatial x channel passes
    inner_cycles: int            # fused-instruction issues per pass
    epilogue_cycles: int         # per-pass requant/store overhead
    setup_cycles: int            # one-time per-layer overhead
    macs: int                    # useful MACs performed
    weight_bytes: int            # weight traffic if streamed
    dtype: NcoreDType = NcoreDType.INT8
    lanes: int = _CHA.lanes      # SIMD width the schedule was built for

    @property
    def cycles(self) -> int:
        """Total Ncore cycles for this kernel."""
        issue = dtype_info(self.dtype).npu_cycles
        return self.setup_cycles + self.passes * (
            self.inner_cycles * issue + self.epilogue_cycles
        )

    @property
    def utilization(self) -> float:
        """Fraction of peak MAC throughput achieved (at this dtype)."""
        if self.cycles == 0:
            return 0.0
        issue = dtype_info(self.dtype).npu_cycles
        peak = self.lanes * self.cycles / issue
        return min(1.0, self.macs / peak)


def _spatial_tiling(h_out: int, w_out: int) -> tuple[int, int, int]:
    """Fig. 7 spatial mapping: returns (passes, valid_per_group, tile_w).

    The width is rounded up to the nearest power of two; when that padded
    width is below 64, a 64-lane group carries several output rows.  The
    spatial map lives inside one broadcast group, so it is independent of
    the slice count.
    """
    tile_w = min(_next_pow2(w_out), BROADCAST_GROUP)
    rows_per_group = BROADCAST_GROUP // tile_w
    x_tiles = -(-w_out // BROADCAST_GROUP) if w_out > BROADCAST_GROUP else 1
    y_tiles = -(-h_out // rows_per_group)
    valid = min(w_out, BROADCAST_GROUP) * rows_per_group if w_out <= BROADCAST_GROUP else BROADCAST_GROUP
    return x_tiles * y_tiles, valid, tile_w


def conv2d_schedule(
    in_channels: int,
    out_channels: int,
    h_out: int,
    w_out: int,
    filter_h: int,
    filter_w: int,
    dtype: NcoreDType = NcoreDType.INT8,
    batch: int = 1,
    config: NcoreConfig | None = None,
) -> KernelSchedule:
    """Standard convolution on the W x K mapping.

    Inner loop: one fused instruction per (filter_y, filter_x, in_channel),
    one broadcast group of output channels and 64 spatial positions per
    pass (64 channels per pass in CHA).
    """
    config = config or _CHA
    spatial_passes, _, _ = _spatial_tiling(h_out, w_out)
    channel_passes = -(-out_channels // config.broadcast_groups)
    inner = filter_h * filter_w * in_channels
    macs = batch * h_out * w_out * out_channels * inner
    element = dtype_info(dtype).bytes_per_element
    weight_bytes = filter_h * filter_w * in_channels * out_channels * element
    return KernelSchedule(
        kernel="conv2d",
        passes=batch * spatial_passes * channel_passes,
        inner_cycles=inner,
        epilogue_cycles=PASS_EPILOGUE_CYCLES,
        setup_cycles=KERNEL_SETUP_CYCLES,
        macs=macs,
        weight_bytes=weight_bytes,
        dtype=dtype,
        lanes=config.lanes,
    )


def depthwise_schedule(
    channels: int,
    h_out: int,
    w_out: int,
    filter_h: int,
    filter_w: int,
    dtype: NcoreDType = NcoreDType.INT8,
    batch: int = 1,
    config: NcoreConfig | None = None,
) -> KernelSchedule:
    """Depthwise convolution: each group is one channel; the inner loop
    covers only the filter taps (no input-channel reduction)."""
    config = config or _CHA
    spatial_passes, _, _ = _spatial_tiling(h_out, w_out)
    channel_passes = -(-channels // config.broadcast_groups)
    inner = filter_h * filter_w
    macs = batch * h_out * w_out * channels * inner
    element = dtype_info(dtype).bytes_per_element
    return KernelSchedule(
        kernel="depthwise_conv2d",
        passes=batch * spatial_passes * channel_passes,
        inner_cycles=inner,
        epilogue_cycles=PASS_EPILOGUE_CYCLES,
        setup_cycles=KERNEL_SETUP_CYCLES,
        macs=macs,
        weight_bytes=filter_h * filter_w * channels * element,
        dtype=dtype,
        lanes=config.lanes,
    )


def matmul_schedule(
    rows: int,
    inner: int,
    cols: int,
    dtype: NcoreDType = NcoreDType.INT8,
    config: NcoreConfig | None = None,
) -> KernelSchedule:
    """Dense matmul (rows, inner) x (inner, cols).

    Two implementation strategies, as section IV-E allows ("a number of
    implementation strategies may be used"); the NKL picks the cheaper:

    - *tile mapping* (the 1x1-conv form): 64 rows x one group-count of
      columns per pass — efficient for GEMM-shaped work;
    - *vector-matrix mapping*: the data element is broadcast across the
      whole row and every lane holds a distinct output column — the
      right form for small-batch LSTM/projection steps (GNMT).
    """
    config = config or _CHA
    tile_passes = max(1, -(-rows // BROADCAST_GROUP)) * -(
        -cols // config.broadcast_groups
    )
    vector_passes = max(1, rows) * -(-cols // config.lanes)
    passes = min(tile_passes, vector_passes)
    element = dtype_info(dtype).bytes_per_element
    return KernelSchedule(
        kernel="matmul",
        passes=passes,
        inner_cycles=inner,
        epilogue_cycles=PASS_EPILOGUE_CYCLES,
        setup_cycles=KERNEL_SETUP_CYCLES,
        macs=rows * inner * cols,
        weight_bytes=inner * cols * element,
        dtype=dtype,
        lanes=config.lanes,
    )


def pool_schedule(
    channels: int,
    h_out: int,
    w_out: int,
    ksize_h: int,
    ksize_w: int,
    dtype: NcoreDType = NcoreDType.INT8,
    batch: int = 1,
    config: NcoreConfig | None = None,
) -> KernelSchedule:
    """Max/average pooling: one MIN/MAX/ADD instruction per tap."""
    config = config or _CHA
    spatial_passes, _, _ = _spatial_tiling(h_out, w_out)
    channel_passes = -(-channels // config.broadcast_groups)
    return KernelSchedule(
        kernel="pool",
        passes=batch * spatial_passes * channel_passes,
        inner_cycles=ksize_h * ksize_w,
        epilogue_cycles=PASS_EPILOGUE_CYCLES,
        setup_cycles=KERNEL_SETUP_CYCLES,
        macs=0,
        weight_bytes=0,
        dtype=dtype,
        lanes=config.lanes,
    )


def elementwise_schedule(
    num_elements: int,
    dtype: NcoreDType = NcoreDType.INT8,
    ops_per_row: int = 1,
    config: NcoreConfig | None = None,
) -> KernelSchedule:
    """Elementwise add/mul/activation: streams full rows, one op per row."""
    config = config or _CHA
    element = dtype_info(dtype).bytes_per_element
    rows = max(1, -(-(num_elements * element) // config.row_bytes))
    return KernelSchedule(
        kernel="elementwise",
        passes=rows,
        inner_cycles=ops_per_row,
        epilogue_cycles=2,  # requant + store per row
        setup_cycles=KERNEL_SETUP_CYCLES,
        macs=0,
        weight_bytes=0,
        dtype=dtype,
        lanes=config.lanes,
    )


def lstm_schedule(
    batch: int,
    input_size: int,
    hidden: int,
    dtype: NcoreDType = NcoreDType.BF16,
    config: NcoreConfig | None = None,
) -> KernelSchedule:
    """One LSTM step: the stacked (in+hidden, 4*hidden) matmul plus the
    elementwise gate math (a handful of row ops)."""
    config = config or _CHA
    gates = matmul_schedule(batch, input_size + hidden, 4 * hidden, dtype, config=config)
    gate_rows = max(1, -(-(batch * 4 * hidden * 2) // config.row_bytes))
    return KernelSchedule(
        kernel="lstm_cell",
        passes=gates.passes,
        inner_cycles=gates.inner_cycles,
        epilogue_cycles=gates.epilogue_cycles,
        setup_cycles=KERNEL_SETUP_CYCLES + gate_rows * 8,  # gate elementwise
        macs=gates.macs,
        weight_bytes=gates.weight_bytes,
        dtype=dtype,
        lanes=config.lanes,
    )
