"""The Ncore Kernel Library (NKL).

Section V-B: "the NKL is similar in spirit to popular vendor-optimized deep
learning libraries such as NVidia's cuDNN and Intel's MKL-DNN.  The NKL is
responsible for generating the complete kernel implementation at the
assembly level to maximize performance", using hand-tuned inner kernels and
internal data layouts optimized for Ncore.

Each kernel has two coupled products derived from one schedule:

- a *cycle count* (closed-form over the Fig. 7 W x K loop-nest mapping),
  used by the fast model for full networks, and
- an *instruction program* emitted for representative shapes and validated
  on the instruction-level simulator against numpy (see
  :mod:`repro.nkl.programs`).
"""

from repro.nkl.lower import UnsupportedOpError, lower_segment
from repro.nkl.schedule import (
    BROADCAST_GROUP,
    KernelSchedule,
    conv2d_schedule,
    depthwise_schedule,
    elementwise_schedule,
    lstm_schedule,
    matmul_schedule,
    pool_schedule,
)

__all__ = [
    "BROADCAST_GROUP",
    "KernelSchedule",
    "UnsupportedOpError",
    "conv2d_schedule",
    "depthwise_schedule",
    "elementwise_schedule",
    "lower_segment",
    "lstm_schedule",
    "matmul_schedule",
    "pool_schedule",
]
