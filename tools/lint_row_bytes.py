#!/usr/bin/env python3
"""Repo lint: no new bare row-width literals outside the config.

The CHA row width (4096 bytes) and RAM height (2048 rows) are architecture
*parameters* — ``NcoreConfig.row_bytes`` / ``NcoreConfig.sram_rows`` — and
every layer of the stack is config-parametric.  A bare ``4096`` or ``2048``
in ``src/`` silently re-hard-codes the shipped point and breaks non-default
configurations, so this lint forbids them as *number tokens* (comments,
docstrings and derived expressions like ``16 * 256`` never trip it).

Escape hatches, in order of preference:

1. derive the value from a config (``config.row_bytes``, ``CHA_NCORE``);
2. where a layer legitimately cannot see a config (e.g. ``repro.isa``
   must not import ``repro.ncore``), append ``# row-bytes-ok: <reason>``
   to the offending line;
3. ``repro/ncore/config.py`` itself is exempt — it *defines* the values.

Run as ``python tools/lint_row_bytes.py [paths...]``; exits non-zero and
prints ``path:line: token`` for each violation.  The test suite runs it
over ``src/`` so CI enforces it.
"""

from __future__ import annotations

import io
import sys
import tokenize
from pathlib import Path

FORBIDDEN = {"4096", "2048"}
WAIVER = "row-bytes-ok"
EXEMPT = ("repro/ncore/config.py",)


def lint_file(path: Path) -> list[tuple[int, str]]:
    """Return (line, token) for every bare forbidden literal in one file."""
    if any(str(path).replace("\\", "/").endswith(name) for name in EXEMPT):
        return []
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    violations: list[tuple[int, str]] = []
    for token in tokenize.generate_tokens(io.StringIO(source).readline):
        if token.type != tokenize.NUMBER or token.string not in FORBIDDEN:
            continue
        line_no = token.start[0]
        line = lines[line_no - 1] if line_no <= len(lines) else ""
        if WAIVER in line:
            continue
        violations.append((line_no, token.string))
    return violations


def lint_tree(roots: list[Path]) -> list[str]:
    """Lint every ``.py`` under the given roots; returns report lines."""
    report: list[str] = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            for line_no, token in lint_file(path):
                report.append(
                    f"{path}:{line_no}: bare {token} — derive it from "
                    f"NcoreConfig or append '# {WAIVER}: <reason>'"
                )
    return report


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src")]
    report = lint_tree(roots)
    for line in report:
        print(line)
    if report:
        print(f"{len(report)} bare row-width literal(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
